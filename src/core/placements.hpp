// Baseline placement strategies and the exact (exponential) reference.
//
//   * random_hash_placement — the paper's production baseline: node =
//     MD5(object name) mod N (Sec. 4.1).
//   * greedy_placement — the paper's correlation-aware heuristic: walk
//     pairs in descending correlation and co-locate each pair when node
//     capacity permits (Sec. 4.1).
//   * brute_force_optimal — exact optimum by enumeration, feasible only
//     for tiny instances; the test oracle for everything else.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/instance.hpp"

namespace cca::core {

/// Names an object for hashing; defaults to "obj<i>".
using ObjectNameFn = std::function<std::string(ObjectId)>;

ObjectNameFn default_object_names();

/// MD5 hash-mod-N placement. Ignores capacities (as the production scheme
/// does); honours pins. Deterministic in the names.
Placement random_hash_placement(const CcaInstance& instance,
                                const ObjectNameFn& name = default_object_names());

struct GreedyOptions {
  /// Pair visiting order: descending r (the paper's wording, default) or
  /// descending r*w (cost-weighted variant, used as an ablation).
  bool order_by_cost = false;
};

/// The paper's greedy heuristic. Pairs are examined in descending
/// correlation; a pair is co-located on a node with room for it (the node
/// with most remaining capacity, so clusters can keep growing). Leftover
/// objects go to the emptiest node that fits them. Honours pins and never
/// exceeds capacity (matching "as long as the node capacity permits it").
Placement greedy_placement(const CcaInstance& instance,
                           const GreedyOptions& options = {});

struct BruteForceResult {
  Placement placement;
  double cost = 0.0;
};

/// Exhaustive search over all capacity-feasible placements (respecting
/// pins). Returns nullopt when no feasible placement exists. Cost grows as
/// N^T — callers must keep T tiny (checked: T <= 16).
std::optional<BruteForceResult> brute_force_optimal(
    const CcaInstance& instance);

/// Summary of a placement against an instance, as reported by benches.
struct PlacementReport {
  double cost = 0.0;            // objective (1)
  double normalized_cost = 0.0; // cost / total pair cost (1 = all split)
  double max_load_factor = 0.0;
  bool feasible = false;
};

PlacementReport evaluate_placement(const CcaInstance& instance,
                                   const Placement& placement);

}  // namespace cca::core
