// Important-object partial optimization — the end-to-end placement
// pipeline of Secs. 3.1 and 4 .
//
// Only the `scope` most important keywords enter the optimization; the
// rest of the vocabulary is placed by MD5 hashing (the paper's production
// baseline). Per Sec. 4.1, each node's capacity is `capacity_slack` (2.0
// in the paper) times the average per-node index size; the optimizer sees
// that capacity minus the load the hashed tail already put on the node.
//
// Strategies share the pipeline so comparisons are apples-to-apples. They
// are resolved by name through core::StrategyRegistry (see strategy.hpp);
// the built-ins are:
//   "lprr"        — Fig. 4 LP relaxation + Algorithm 2.1 rounding (the
//                   paper's contribution),
//   "greedy"      — the correlation-aware greedy heuristic,
//   "multilevel"  — the multilevel partitioner,
//   "hypergraph"  — multilevel hypergraph partitioner on whole queries
//                   (lambda - 1 objective; see core/hypergraph.hpp),
//   "random-hash" — hash placement for every keyword (scope ignored).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/correlation.hpp"
#include "core/hypergraph.hpp"
#include "core/instance.hpp"
#include "core/multilevel.hpp"
#include "core/placement_map.hpp"
#include "core/placements.hpp"
#include "core/rounding.hpp"
#include "core/strategy.hpp"
#include "lp/basis.hpp"
#include "trace/trace.hpp"

namespace cca::core {

struct PartialOptimizerConfig {
  int num_nodes = 10;
  std::size_t scope = 1000;      // most-important keywords to optimize
  double capacity_slack = 2.0;   // paper: twice the average per-node load
  /// Hash rule placing the out-of-scope tail (and "random-hash"). kMd5 is
  /// the paper's production baseline; kJump keeps tail movement at ~1/N
  /// under cluster growth (see core/placement_map.hpp).
  HashTail hash_tail = HashTail::kMd5;
  OperationModel operation_model = OperationModel::kSmallestPair;
  /// Correlation miner feeding the importance ranking and the scoped
  /// instance. kExact (default) is bit-for-bit the historical pipeline;
  /// kSketch bounds mining memory for vocabularies the exact counter
  /// cannot hold (see trace/stream_miner.hpp).
  MinerOptions miner;
  RoundingPolicy rounding;       // LPRR only
  GreedyOptions greedy;          // greedy only
  MultilevelOptions multilevel;  // multilevel only (seed is overridden
                                 // by `seed` below for determinism)
  HypergraphOptions hypergraph;  // hypergraph only (seed overridden too)
  std::uint64_t seed = 1;        // LP vertex choice + rounding stream
  /// LPRR: components larger than this fraction of the smallest node
  /// capacity are pre-split so the rounded placement can respect realized
  /// capacity (see ComponentSolverOptions::target_fill). 0 = literal LP
  /// optimum with whole-component collapse.
  double component_fill = 1.0;
  /// Use the full Fig. 4 LP via simplex instead of the component-exact
  /// solver. Identical optima; only viable at small scopes (see
  /// component_solver.hpp). Exposed for validation runs.
  bool use_full_lp = false;
  /// LPRR: reuse the optimal basis of the previous LP solve (held in this
  /// optimizer's warm-start cache) when running the same optimizer
  /// repeatedly, e.g. across seeds or drift steps. Never changes the
  /// placement — only the simplex pivot count (see lp/basis.hpp).
  bool lp_warm_start = true;
};

struct PlacementPlan {
  /// Node of every vocabulary keyword (the "lookup table" of Sec. 4.1).
  std::vector<NodeId> keyword_to_node;
  /// Keywords that were inside the optimization scope.
  std::vector<trace::KeywordId> scope;
  /// Modeled evaluation on the scoped instance (LPRR/greedy; for kRandom
  /// the scoped instance is evaluated under the hash placement).
  PlacementReport scoped_report;
  /// Realized per-node total index bytes (scope + tail).
  std::vector<double> node_loads;
  /// max node load / (slack * average load) over all keywords.
  double max_load_factor = 0.0;
  /// Registry name of the strategy that produced this plan.
  std::string strategy;
};

class PartialOptimizer {
 public:
  /// `index_sizes` are per-keyword byte sizes over the trace vocabulary.
  PartialOptimizer(const trace::QueryTrace& trace,
                   const std::vector<std::uint64_t>& index_sizes,
                   PartialOptimizerConfig config);

  /// Runs one strategy end-to-end and returns the full placement plan.
  /// `strategy` is resolved through StrategyRegistry::global(); unknown
  /// names throw common::Error listing what is registered.
  PlacementPlan run(std::string_view strategy) const;

  /// The scoped CCA instance a strategy optimizes (capacities already
  /// reduced by the hashed tail's load). Useful for diagnostics/benches.
  const CcaInstance& scoped_instance() const { return *instance_; }
  const PartialOptimizerConfig& config() const { return config_; }
  const std::vector<KeywordPairWeight>& all_pairs() const { return pairs_; }

  /// The hash (production-baseline) placement of the scope keywords: what
  /// "random-hash" uses, and the fallback every tail keyword gets.
  Placement hash_scope_placement() const;

  /// Per-optimizer LP warm-start cache: successive runs against this
  /// optimizer's (fixed-shape) scoped instance hand their final basis to
  /// the next solve. Used by "lprr" when config().lp_warm_start is on.
  lp::WarmStartCache* lp_warm_cache() const { return &lp_warm_cache_; }

 private:
  PlacementPlan assemble(std::string_view strategy,
                         const Placement& scope_placement) const;

  PartialOptimizerConfig config_;
  std::vector<std::uint64_t> index_sizes_;
  std::vector<KeywordPairWeight> pairs_;        // full-vocabulary pairs
  std::vector<trace::KeywordId> ranking_;       // importance order
  std::vector<trace::KeywordId> scope_;         // first `scope` of ranking_
  std::vector<int> object_of_keyword_;          // keyword -> scope index or -1
  std::vector<NodeId> tail_nodes_;              // hash node per keyword
  std::vector<double> tail_loads_;              // hashed tail bytes per node
  double capacity_ = 0.0;                       // slack * average load
  std::unique_ptr<CcaInstance> instance_;
  mutable lp::WarmStartCache lp_warm_cache_;
};

}  // namespace cca::core
