// Exact, scalable solver for the Fig. 4 LP relaxation (pin-free case).
//
// Key structural fact about the relaxation (proved in the comment inside
// component_solver.cpp and exercised by tests): for any feasible instance
// without pinned objects, the LP optimum is exactly 0, achieved by giving
// every object of a correlation-graph component the same fractional row
// q_c — the pair terms |x_ik - x_jk| all vanish. Finding an optimal
// *vertex* therefore reduces to a transportation LP over components x
// nodes (rows = #components + #nodes), which our revised simplex solves in
// milliseconds where the literal Fig. 4 program would need
// O(|T||N| + |E||N|) rows — the 48-hour LPsolve runs of Sec. 4.2.
//
// The resulting fractional placement is handed to Algorithm 2.1 unchanged;
// because rows are identical within a component, the rounding co-places
// whole components (exactly what it does on any zero-objective solution).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "lp/basis.hpp"

namespace cca::core {

/// Connected components of the correlation graph (edges = pairs with
/// positive cost r*w).
struct ComponentStructure {
  std::vector<int> component_of;               // object -> component
  std::vector<std::vector<ObjectId>> members;  // component -> objects
  std::vector<double> sizes;                   // component total size

  int num_components() const { return static_cast<int>(members.size()); }
};

ComponentStructure find_components(const CcaInstance& instance);

struct ComponentSolverOptions {
  /// Randomizes the auxiliary vertex-selection objective of the
  /// transportation LP (the Fig. 4 objective itself is 0 on the whole
  /// optimal face, so any vertex is LP-optimal; different seeds model the
  /// arbitrary vertex an off-the-shelf solver would return).
  std::uint64_t seed = 1;
  /// When > 0, any component larger than target_fill x (smallest node
  /// capacity) is pre-split by a greedy min-cut heuristic until each
  /// piece fits. Algorithm 2.1 co-rounds whole (identical-row) groups, so
  /// without splitting an oversized component lands on ONE node and blows
  /// realized capacity — Theorem 3 only bounds loads in expectation. With
  /// splitting the result is no longer the literal LP optimum (cut pairs
  /// may pay), trading modeled cost for realized balance — the practical
  /// reading of the paper's Sec. 2.3 "conservative capacities" remark.
  /// 0 disables splitting (exact LP optimum).
  double target_fill = 0.0;
  /// When non-null, the transportation LP warm-starts from the basis this
  /// cache holds (when shape-compatible) and stores its final basis back —
  /// the drift/recovery loops re-solve near-identical programs, so phase 2
  /// usually restarts within a few pivots of done. When null (or the cache
  /// is cold) the solve still warm-starts from a crash basis built out of
  /// the per-group capacity-relaxed solves. Hints never change the
  /// placement, only the pivot count (see lp/basis.hpp).
  lp::WarmStartCache* warm_cache = nullptr;
};

/// Object groups that the rounding will co-place: correlation components,
/// optionally split to fit node capacity.
struct PlacementGroups {
  std::vector<std::vector<ObjectId>> members;
  std::vector<double> sizes;
  /// Original correlation component each group came from. Sibling groups
  /// (same component, split apart) share vertex-selection preferences in
  /// the transportation LP so they re-co-locate whenever capacity allows,
  /// recovering the cut cost for free.
  std::vector<int> component_of_group;
  /// Total cost of pairs whose endpoints ended in different groups (0
  /// without splitting); a lower bound on the rounded placement's cost.
  double cut_cost = 0.0;
};

/// Builds the co-placement groups for `instance` under `options`.
PlacementGroups build_groups(const CcaInstance& instance,
                             const ComponentSolverOptions& options);

class ComponentLpSolver {
 public:
  explicit ComponentLpSolver(std::uint64_t seed = 1) { options_.seed = seed; }
  explicit ComponentLpSolver(ComponentSolverOptions options)
      : options_(options) {}

  /// Solves the relaxation exactly. Requires a pin-free instance (use
  /// solve_cca_lp for pinned ones) and total size <= total capacity.
  ///
  /// Extra resources (Sec. 3.3) are honoured at component granularity.
  /// Caveat: with resources whose demands are not proportional to object
  /// sizes, the identical-rows argument no longer proves the optimum is 0;
  /// this solver then returns a 0-objective solution whenever the
  /// contracted program is feasible and throws otherwise — in the latter
  /// case fall back to solve_cca_lp, which handles the (now genuinely
  /// non-degenerate) program in full.
  FractionalPlacement solve(const CcaInstance& instance) const;

 private:
  ComponentSolverOptions options_;
};

}  // namespace cca::core
