#include "core/plan_io.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>

#include "common/check.hpp"

namespace cca::core {

namespace {

constexpr const char* kHeaderPrefix = "# cca-placement v1 nodes=";

/// Strict decimal parse: the whole of [begin, terminator) must be one
/// in-range number. Returns false on empty input, trailing junk, or
/// overflow (strtol's silent LONG_MAX clamp is checked via errno).
bool parse_long(const char* begin, long* value, char terminator = '\0') {
  char* end = nullptr;
  errno = 0;
  *value = std::strtol(begin, &end, 10);
  return end != begin && end && *end == terminator && errno != ERANGE;
}

}  // namespace

void write_placement(std::ostream& os,
                     const std::vector<int>& keyword_to_node, int num_nodes) {
  CCA_CHECK(num_nodes >= 1);
  for (int node : keyword_to_node)
    CCA_CHECK_MSG(node >= 0 && node < num_nodes,
                  "placement references unknown node " << node);
  os << kHeaderPrefix << num_nodes << " keywords=" << keyword_to_node.size()
     << '\n';
  for (int node : keyword_to_node) os << node << '\n';
}

LoadedPlacement read_placement(std::istream& is, const std::string& source) {
  std::string header;
  CCA_CHECK_MSG(std::getline(is, header),
                source << ":1: empty placement stream");
  CCA_CHECK_MSG(header.rfind(kHeaderPrefix, 0) == 0,
                source << ":1: bad placement header: '" << header << "'");
  // Header tail: "<nodes> keywords=<count>", both strictly numeric.
  const std::size_t prefix_len = std::string(kHeaderPrefix).size();
  long nodes = 0;
  CCA_CHECK_MSG(parse_long(header.c_str() + prefix_len, &nodes, ' '),
                source << ":1: bad node count in placement header: '"
                       << header << "'");
  CCA_CHECK_MSG(nodes >= 1 && nodes <= INT_MAX,
                source << ":1: node count " << nodes << " out of range");
  const std::string keywords_field =
      header.substr(header.find(' ', prefix_len) + 1);
  CCA_CHECK_MSG(keywords_field.rfind("keywords=", 0) == 0,
                source << ":1: bad keywords field in placement header: '"
                       << header << "'");
  long keywords = 0;
  CCA_CHECK_MSG(parse_long(keywords_field.c_str() + 9, &keywords),
                source << ":1: bad keyword count in placement header: '"
                       << header << "'");
  CCA_CHECK_MSG(keywords >= 0,
                source << ":1: bad keyword count in placement header: '"
                       << header << "'");

  LoadedPlacement out;
  out.num_nodes = static_cast<int>(nodes);
  // Reserve against the header's claim, but bounded: a corrupted count
  // must not translate into an absurd allocation before the (cheap)
  // entry scan can notice the file is short.
  constexpr long kMaxReserve = 1L << 22;
  out.keyword_to_node.reserve(
      static_cast<std::size_t>(std::min(keywords, kMaxReserve)));
  std::string line;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    long node = 0;
    CCA_CHECK_MSG(parse_long(line.c_str(), &node),
                  source << ":" << line_no << ": bad node '" << line << "'");
    CCA_CHECK_MSG(node >= 0 && node < nodes,
                  source << ":" << line_no << ": node " << node
                         << " out of range [0, " << nodes << ")");
    CCA_CHECK_MSG(static_cast<long>(out.keyword_to_node.size()) < keywords,
                  source << ":" << line_no << ": more entries than the "
                         << keywords << " the header declared");
    out.keyword_to_node.push_back(static_cast<int>(node));
  }
  // getline stops at EOF (fine: completeness is checked next) or on a
  // hard read error (not fine: the data that followed is unknown).
  CCA_CHECK_MSG(!is.bad(), source << ":" << line_no
                                  << ": read failure mid-placement");
  CCA_CHECK_MSG(static_cast<long>(out.keyword_to_node.size()) == keywords,
                source << ": truncated placement: " << out.keyword_to_node.size()
                       << " entries, header said " << keywords);
  return out;
}

void save_placement(const std::string& path,
                    const std::vector<int>& keyword_to_node, int num_nodes) {
  std::ofstream file(path);
  CCA_CHECK_MSG(file, "cannot open '" << path << "' for writing");
  write_placement(file, keyword_to_node, num_nodes);
  CCA_CHECK_MSG(file.good(), "write failed for '" << path << "'");
}

LoadedPlacement load_placement(const std::string& path) {
  std::ifstream file(path);
  CCA_CHECK_MSG(file, "cannot open '" << path << "' for reading");
  return read_placement(file, path);
}

}  // namespace cca::core
