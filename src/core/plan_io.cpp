#include "core/plan_io.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace cca::core {

namespace {
constexpr const char* kHeaderPrefix = "# cca-placement v1 nodes=";
}

void write_placement(std::ostream& os,
                     const std::vector<int>& keyword_to_node, int num_nodes) {
  CCA_CHECK(num_nodes >= 1);
  for (int node : keyword_to_node)
    CCA_CHECK_MSG(node >= 0 && node < num_nodes,
                  "placement references unknown node " << node);
  os << kHeaderPrefix << num_nodes << " keywords=" << keyword_to_node.size()
     << '\n';
  for (int node : keyword_to_node) os << node << '\n';
}

LoadedPlacement read_placement(std::istream& is) {
  std::string header;
  CCA_CHECK_MSG(std::getline(is, header), "empty placement stream");
  CCA_CHECK_MSG(header.rfind(kHeaderPrefix, 0) == 0,
                "bad placement header: '" << header << "'");
  std::istringstream header_tokens(
      header.substr(std::string(kHeaderPrefix).size()));
  long nodes = 0;
  std::string keywords_field;
  header_tokens >> nodes >> keywords_field;
  CCA_CHECK_MSG(nodes >= 1, "bad node count in placement header");
  CCA_CHECK_MSG(keywords_field.rfind("keywords=", 0) == 0,
                "bad keywords field in placement header");
  const long keywords = std::strtol(keywords_field.c_str() + 9, nullptr, 10);
  CCA_CHECK_MSG(keywords >= 0, "bad keyword count in placement header");

  LoadedPlacement out;
  out.num_nodes = static_cast<int>(nodes);
  out.keyword_to_node.reserve(static_cast<std::size_t>(keywords));
  std::string line;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    const long node = std::strtol(line.c_str(), &end, 10);
    CCA_CHECK_MSG(end && *end == '\0',
                  "placement line " << line_no << ": bad node '" << line
                                    << "'");
    CCA_CHECK_MSG(node >= 0 && node < nodes,
                  "placement line " << line_no << ": node " << node
                                    << " out of range");
    out.keyword_to_node.push_back(static_cast<int>(node));
  }
  CCA_CHECK_MSG(static_cast<long>(out.keyword_to_node.size()) == keywords,
                "placement has " << out.keyword_to_node.size()
                                 << " entries, header said " << keywords);
  return out;
}

void save_placement(const std::string& path,
                    const std::vector<int>& keyword_to_node, int num_nodes) {
  std::ofstream file(path);
  CCA_CHECK_MSG(file, "cannot open '" << path << "' for writing");
  write_placement(file, keyword_to_node, num_nodes);
  CCA_CHECK_MSG(file.good(), "write failed for '" << path << "'");
}

LoadedPlacement load_placement(const std::string& path) {
  std::ifstream file(path);
  CCA_CHECK_MSG(file, "cannot open '" << path << "' for reading");
  return read_placement(file);
}

}  // namespace cca::core
