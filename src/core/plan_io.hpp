// Plain-text serialization of keyword -> node placement plans.
//
// The placement is the artifact an operator actually deploys (the lookup
// table of Sec. 4.1); persisting it decouples the offline optimization
// run from the serving system and makes placements diffable across
// re-optimization rounds (see core/migration.hpp).
//
// Format:
//
//   # cca-placement v1 nodes=10 keywords=253334
//   3
//   0
//   7
//   ...
//
// Line k+1 holds the node of keyword k. '#' lines after the header are
// comments.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cca::core {

/// Writes a keyword->node map for `num_nodes` nodes.
void write_placement(std::ostream& os, const std::vector<int>& keyword_to_node,
                     int num_nodes);

/// Parses a v1 placement; throws common::Error on malformed input
/// (bad or overflowing header fields, non-numeric or out-of-range nodes,
/// truncated files, wrong entry count, stream read failures). Every
/// message carries `source` plus the offending line number so operators
/// can locate corruption in a deployed table (`source` is the file path
/// when coming through load_placement).
struct LoadedPlacement {
  std::vector<int> keyword_to_node;
  int num_nodes = 0;
};
LoadedPlacement read_placement(std::istream& is,
                               const std::string& source = "<stream>");

/// Convenience file wrappers.
void save_placement(const std::string& path,
                    const std::vector<int>& keyword_to_node, int num_nodes);
LoadedPlacement load_placement(const std::string& path);

}  // namespace cca::core
