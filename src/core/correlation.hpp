// From query trace to CCA inputs: correlations r(i,j), pair costs w(i,j),
// and the importance ranking for partial optimization.
//
// Operation model (Sec. 3.2): for intersection-like operations a
// >2-keyword query is approximated by its two smallest-index keywords, so
// r(i,j) becomes "the probability that i and j are the two smallest
// objects requested in an operation" and w(i,j) = min(s(i), s(j)) — the
// bytes shipped when the smaller index travels to the larger one's node.
// The kAllPairs model keeps the base definition (every co-requested pair),
// which is exact for two-object operations.
//
// Importance ranking (Sec. 4.2): rank pairs by their communication cost
// r(i,j) * w(i,j); a keyword's importance is its first appearance in that
// pair ranking; keywords that never communicate rank last (largest index
// first, since they still consume placement-relevant space).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "trace/pair_stats.hpp"
#include "trace/stream_miner.hpp"
#include "trace/trace.hpp"

namespace cca::core {

enum class OperationModel {
  kAllPairs,      // base definition: every pair of every query
  kSmallestPair,  // Sec. 3.2 intersection adjustment (the paper's choice)
};

/// trace::PairMode equivalent of an OperationModel (the trace layer keeps
/// its own enum so it does not depend on core/).
trace::PairMode pair_mode_of(OperationModel model);

/// Which correlation miner feeds the pipeline.
///   kExact  — PairCounter: one hash slot per distinct pair (exact counts,
///             memory grows with the pair vocabulary);
///   kSketch — StreamMiner: Count-Min pair sketch + bounded candidate set
///             (bounded memory, top-k recall ≥ the sketch's guarantee).
struct MinerOptions {
  enum class Kind { kExact, kSketch };
  Kind kind = Kind::kExact;
  trace::StreamMinerConfig sketch;  // geometry, used when kind == kSketch

  /// Parses "exact"/"sketch"; returns false on anything else.
  static bool parse_kind(const std::string& name, Kind* out);
};

/// A correlated keyword pair in vocabulary space.
struct KeywordPairWeight {
  trace::KeywordId a = 0;
  trace::KeywordId b = 0;
  double r = 0.0;  // correlation (empirical probability)
  double w = 0.0;  // communication bytes when separated

  double cost() const { return r * w; }
};

/// Builds r and w for every observed pair. `index_sizes` (bytes, indexed
/// by keyword) provides both the smallest-pair selection and w.
std::vector<KeywordPairWeight> build_pair_weights(
    const trace::QueryTrace& trace,
    const std::vector<std::uint64_t>& index_sizes, OperationModel model);

/// Sketch path: r and w for the miner's current top candidate pairs
/// (estimate desc, pair asc — at most the miner's top_pairs entries).
/// Probabilities use the miner's decayed query weight, so a drift-decayed
/// miner yields exponentially-weighted correlations.
std::vector<KeywordPairWeight> build_pair_weights(
    const trace::StreamMiner& miner,
    const std::vector<std::uint64_t>& index_sizes);

/// Unified entry point: mines `trace` with the selected miner and returns
/// pair weights. kExact reproduces build_pair_weights(trace, ...) exactly;
/// kSketch mines a fresh StreamMiner (sharded, deterministic for any
/// thread count) and returns its candidates.
std::vector<KeywordPairWeight> mine_pair_weights(
    const trace::QueryTrace& trace,
    const std::vector<std::uint64_t>& index_sizes, OperationModel model,
    const MinerOptions& miner);

/// A multi-keyword operation kept whole: the distinct keywords of one
/// observed query shape and the rate at which it was asked. This is the
/// information the pairwise collapse throws away — the input of the
/// hypergraph strategy (core/hypergraph.hpp).
struct KeywordHyperedge {
  std::vector<trace::KeywordId> pins;  // distinct, sorted ascending
  double weight = 0.0;                 // empirical rate (queries / trace)
};

/// Aggregates the trace's multi-keyword queries into weighted hyperedges:
/// one edge per distinct keyword set, weight = (occurrences / trace
/// size). Single-keyword queries are dropped (they never communicate).
/// Deterministic: edges are sorted by pin set.
std::vector<KeywordHyperedge> build_hyperedges(const trace::QueryTrace& trace);

/// Sec. 4.2 keyword importance ranking (most important first). Covers the
/// whole vocabulary.
std::vector<trace::KeywordId> importance_ranking(
    const std::vector<KeywordPairWeight>& pairs,
    const std::vector<std::uint64_t>& index_sizes);

/// One point of the Fig. 5 dominance curve.
struct DominancePoint {
  std::size_t rank = 0;                  // number of top keywords included
  double cumulative_size_fraction = 0.0; // of total index size
  double cumulative_cost_fraction = 0.0; // of total pair communication cost
};

/// Cumulative index-size and communication-cost coverage of the top-ranked
/// keywords, sampled at `sample_points` evenly spaced ranks (plus the final
/// full-vocabulary point). A pair's cost counts once both endpoints are in
/// the prefix.
std::vector<DominancePoint> dominance_curve(
    const std::vector<trace::KeywordId>& ranking,
    const std::vector<KeywordPairWeight>& pairs,
    const std::vector<std::uint64_t>& index_sizes, std::size_t sample_points);

}  // namespace cca::core
