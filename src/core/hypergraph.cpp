#include "core/hypergraph.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"

namespace cca::core {

namespace {

/// Working hypergraph at one level of the multilevel hierarchy.
struct Hypergraph {
  int n = 0;
  std::vector<double> vweight;                // object bytes
  std::vector<std::optional<NodeId>> pin;     // placement pins (fixed node)
  std::vector<std::vector<int>> nets;         // net -> distinct vertices
  std::vector<double> eweight;                // net -> rate weight
  std::vector<std::vector<int>> incident;     // vertex -> incident net ids

  void build_incidence() {
    incident.assign(static_cast<std::size_t>(n), {});
    for (std::size_t e = 0; e < nets.size(); ++e)
      for (int v : nets[e]) incident[v].push_back(static_cast<int>(e));
  }
};

Hypergraph build_base(const CcaInstance& instance) {
  Hypergraph g;
  g.n = instance.num_objects();
  g.vweight = instance.object_sizes();
  g.pin.resize(static_cast<std::size_t>(g.n));
  for (int i = 0; i < g.n; ++i) g.pin[i] = instance.pinned_node(i);

  if (instance.has_hyperedges()) {
    // set_hyperedges already canonicalized (sorted distinct pins, >= 2,
    // duplicates merged).
    for (const Hyperedge& e : instance.hyperedges()) {
      g.nets.push_back(e.pins);
      g.eweight.push_back(e.weight);
    }
  } else {
    // Pairwise fallback: each pair is a 2-pin net of weight r*w, so
    // lambda - 1 reduces to the paper's cut objective and the partitioner
    // acts as the Golab-style graph partitioner.
    std::map<std::pair<int, int>, double> edges;
    for (const PairWeight& p : instance.pairs()) {
      if (p.cost() <= 0.0) continue;
      edges[{p.i, p.j}] += p.cost();
    }
    for (const auto& [key, weight] : edges) {
      g.nets.push_back({key.first, key.second});
      g.eweight.push_back(weight);
    }
  }
  g.build_incidence();
  return g;
}

/// Heavy-edge matching on pin co-membership + contraction. Fills
/// coarse_of (fine vertex -> coarse vertex). Pinned vertices only merge
/// with vertices of the same (or no) pin; no match may create a coarse
/// vertex heavier than `max_weight`, or contracted blobs outgrow node
/// capacity and refinement can never rebalance them.
Hypergraph coarsen(const Hypergraph& g, common::Rng& rng, double max_weight,
                   std::vector<int>& coarse_of) {
  std::vector<int> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  for (int i = g.n - 1; i > 0; --i)
    std::swap(order[i],
              order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);

  std::vector<int> match(static_cast<std::size_t>(g.n), -1);
  const auto pins_compatible = [&](int a, int b) {
    return !g.pin[a] || !g.pin[b] || *g.pin[a] == *g.pin[b];
  };

  // Scratch connectivity scores, cleared per vertex via the touched list.
  std::vector<double> score(static_cast<std::size_t>(g.n), 0.0);
  std::vector<int> touched;
  for (int v : order) {
    if (match[v] >= 0) continue;
    touched.clear();
    for (int e : g.incident[v]) {
      // Standard hyperedge-to-edge lowering: a k-pin net of weight w
      // contributes w / (k - 1) to each co-member pair.
      const double contrib =
          g.eweight[e] / static_cast<double>(g.nets[e].size() - 1);
      for (int u : g.nets[e]) {
        if (u == v) continue;
        if (score[u] == 0.0) touched.push_back(u);
        score[u] += contrib;
      }
    }
    int best = -1;
    double best_score = 0.0;
    for (int u : touched) {
      const double s = score[u];
      score[u] = 0.0;
      if (match[u] >= 0 || !pins_compatible(v, u)) continue;
      if (g.vweight[v] + g.vweight[u] > max_weight) continue;
      if (s > best_score || (s == best_score && best >= 0 && u < best)) {
        best = u;
        best_score = s;
      }
    }
    if (best >= 0) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  coarse_of.assign(static_cast<std::size_t>(g.n), -1);
  Hypergraph coarse;
  for (int v = 0; v < g.n; ++v) {
    if (coarse_of[v] >= 0) continue;
    const int partner = match[v];
    const int c = coarse.n++;
    coarse_of[v] = c;
    double weight = g.vweight[v];
    std::optional<NodeId> pin = g.pin[v];
    if (partner != v) {
      coarse_of[partner] = c;
      weight += g.vweight[partner];
      if (!pin) pin = g.pin[partner];
    }
    coarse.vweight.push_back(weight);
    coarse.pin.push_back(pin);
  }

  // Net contraction/dedup: remap pins, drop collapsed (single-pin) nets,
  // merge nets whose coarse pin sets coincide. std::map keys keep the
  // merged net order deterministic.
  std::map<std::vector<int>, double> merged;
  std::vector<int> pins;
  for (std::size_t e = 0; e < g.nets.size(); ++e) {
    pins.clear();
    for (int v : g.nets[e]) pins.push_back(coarse_of[v]);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;  // contracted away
    merged[pins] += g.eweight[e];
  }
  coarse.nets.reserve(merged.size());
  coarse.eweight.reserve(merged.size());
  for (auto& [key, weight] : merged) {
    coarse.nets.push_back(key);
    coarse.eweight.push_back(weight);
  }
  coarse.build_incidence();
  return coarse;
}

/// Greedy affinity placement of a (coarse) hypergraph: big vertices
/// first, each to the node already hosting the most incident net weight
/// among nodes with room.
std::vector<NodeId> initial_partition(const Hypergraph& g,
                                      const std::vector<double>& capacities) {
  const int N = static_cast<int>(capacities.size());
  std::vector<double> remaining = capacities;
  std::vector<NodeId> part(static_cast<std::size_t>(g.n), -1);

  std::vector<int> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (g.vweight[a] != g.vweight[b]) return g.vweight[a] > g.vweight[b];
    return a < b;
  });

  const auto place = [&](int v, NodeId k) {
    part[v] = k;
    remaining[k] -= g.vweight[v];
  };
  for (int v = 0; v < g.n; ++v)
    if (g.pin[v]) place(v, *g.pin[v]);

  std::vector<double> affinity(static_cast<std::size_t>(N));
  std::vector<char> edge_seen(static_cast<std::size_t>(N));
  for (int v : order) {
    if (part[v] >= 0) continue;
    std::fill(affinity.begin(), affinity.end(), 0.0);
    for (int e : g.incident[v]) {
      // A net credits each node it already touches once (lambda counts
      // distinct nodes, not pin multiplicity).
      std::fill(edge_seen.begin(), edge_seen.end(), 0);
      for (int u : g.nets[e]) {
        if (part[u] < 0 || u == v) continue;
        if (!edge_seen[part[u]]) {
          edge_seen[part[u]] = 1;
          affinity[part[u]] += g.eweight[e];
        }
      }
    }
    NodeId best = -1;
    for (int k = 0; k < N; ++k) {
      if (remaining[k] < g.vweight[v]) continue;
      if (best < 0 || affinity[k] > affinity[best] ||
          (affinity[k] == affinity[best] && remaining[k] > remaining[best]))
        best = k;
    }
    if (best < 0) {  // nothing fits: least-loaded fallback
      best = 0;
      for (int k = 1; k < N; ++k)
        if (remaining[k] > remaining[best]) best = k;
    }
    place(v, best);
  }
  return part;
}

/// FM-style single-vertex refinement of the lambda-1 objective under
/// capacity, then the deterministic overflow drain.
void refine(const Hypergraph& g, const std::vector<double>& capacities,
            std::vector<NodeId>& part, int passes, common::Rng& rng) {
  const int N = static_cast<int>(capacities.size());
  std::vector<double> load(static_cast<std::size_t>(N), 0.0);
  for (int v = 0; v < g.n; ++v) load[part[v]] += g.vweight[v];

  // phi[e][k]: pins of net e currently on node k. Moving v from a to b
  // changes the net's lambda by [phi[e][b]==0] - [phi[e][a]==1], so move
  // gains are O(degree * N) to evaluate and O(degree) to apply.
  std::vector<std::vector<int>> phi(g.nets.size(),
                                    std::vector<int>(static_cast<std::size_t>(N), 0));
  for (std::size_t e = 0; e < g.nets.size(); ++e)
    for (int v : g.nets[e]) ++phi[e][part[v]];

  std::vector<int> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> present(static_cast<std::size_t>(N));
  std::vector<double> aux(static_cast<std::size_t>(N));

  const auto apply_move = [&](int v, NodeId from, NodeId to) {
    load[from] -= g.vweight[v];
    load[to] += g.vweight[v];
    part[v] = to;
    for (int e : g.incident[v]) {
      --phi[e][from];
      ++phi[e][to];
    }
  };

  for (int pass = 0; pass < passes; ++pass) {
    for (int i = g.n - 1; i > 0; --i)
      std::swap(order[i],
                order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
    bool moved = false;
    for (int v : order) {
      if (g.pin[v] || g.incident[v].empty()) continue;
      const NodeId current = part[v];
      // base: weight of nets where v is the node's last pin (lambda drops
      // when v leaves). present[k]: net weight already touching node k.
      // aux[k]: clique-expansion affinity (co-member pins of v on k, each
      // weighted eweight/(|e|-1)) — a strict tie-break that lets plateau
      // moves drift pins toward their co-members so a later pass can
      // collapse the net. Moving a single pin of a 2+2 split net has zero
      // lambda gain, yet it is exactly the move that unlocks lambda=1.
      double base = 0.0, total = 0.0;
      std::fill(present.begin(), present.end(), 0.0);
      std::fill(aux.begin(), aux.end(), 0.0);
      for (int e : g.incident[v]) {
        const double w = g.eweight[e];
        const double c =
            w / static_cast<double>(std::max<std::size_t>(
                    g.nets[e].size() - 1, 1));
        total += w;
        if (phi[e][current] == 1) base += w;
        for (int k = 0; k < N; ++k) {
          if (phi[e][k] > 0) present[k] += w;
          aux[k] += c * phi[e][k];
        }
        aux[current] -= c;  // do not count v as its own co-member
      }
      NodeId best = current;
      double best_gain = 0.0;
      double best_aux = 0.0;  // aux gain of staying put
      for (int k = 0; k < N; ++k) {
        if (k == current) continue;
        if (load[k] + g.vweight[v] > capacities[k]) continue;
        // gain = base - (weight of nets for which k is a brand-new node)
        const double gain = base - (total - present[k]);
        const double aux_gain = aux[k] - aux[current];
        if (gain > best_gain + 1e-12 ||
            (gain > best_gain - 1e-12 && aux_gain > best_aux + 1e-12)) {
          best = k;
          best_gain = gain;
          best_aux = aux_gain;
        }
      }
      if (best != current) {
        apply_move(v, current, best);
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Overflow drain, mirroring multilevel's repaired rebalance pass:
  // cheapest lambda-increase evictions first; when nothing fits anywhere
  // the smallest unpinned object spills to the least-loaded node and the
  // violation is surfaced through the metric.
  static common::Counter& capacity_violations =
      common::MetricsRegistry::global().counter(
          "core.hypergraph.capacity_violations");
  for (int k = 0; k < N; ++k) {
    while (load[k] > capacities[k]) {
      int victim = -1;
      NodeId victim_dest = -1;
      double victim_loss = 0.0;
      for (int v = 0; v < g.n; ++v) {
        if (part[v] != k || g.pin[v]) continue;
        double base = 0.0, total = 0.0;
        std::fill(present.begin(), present.end(), 0.0);
        for (int e : g.incident[v]) {
          const double w = g.eweight[e];
          total += w;
          if (phi[e][k] == 1) base += w;
          for (int t = 0; t < N; ++t)
            if (phi[e][t] > 0) present[t] += w;
        }
        for (int t = 0; t < N; ++t) {
          if (t == k || load[t] + g.vweight[v] > capacities[t]) continue;
          const double loss = (total - present[t]) - base;
          if (victim < 0 || loss < victim_loss) {
            victim = v;
            victim_dest = t;
            victim_loss = loss;
          }
        }
      }
      if (victim < 0) {
        int spill = -1;
        for (int v = 0; v < g.n; ++v) {
          if (part[v] != k || g.pin[v]) continue;
          if (spill < 0 || g.vweight[v] < g.vweight[spill]) spill = v;
        }
        capacity_violations.add();
        if (spill < 0 || N < 2) break;  // pinned overload: unavoidable
        NodeId dest = k == 0 ? 1 : 0;
        for (int t = 0; t < N; ++t)
          if (t != k && load[t] < load[dest]) dest = t;
        apply_move(spill, k, dest);
      } else {
        apply_move(victim, k, victim_dest);
      }
    }
  }
}

/// Exact objective of a base-level assignment: sum over nets of
/// weight * (distinct nodes hosting the net's pins - 1).
double lambda_cost(const Hypergraph& g, const std::vector<NodeId>& part) {
  double cost = 0.0;
  std::vector<NodeId> nodes;
  for (std::size_t e = 0; e < g.nets.size(); ++e) {
    nodes.clear();
    for (int v : g.nets[e]) nodes.push_back(part[v]);
    std::sort(nodes.begin(), nodes.end());
    const auto lambda =
        std::unique(nodes.begin(), nodes.end()) - nodes.begin();
    cost += g.eweight[e] * static_cast<double>(lambda - 1);
  }
  return cost;
}

/// Worst per-node load factor of a base-level assignment (loads over the
/// instance capacities); used to rank restarts lexicographically below
/// the lambda objective so a cheap-but-overflowing V-cycle never wins.
double max_overflow(const Hypergraph& g, const std::vector<NodeId>& part,
                    const std::vector<double>& capacities) {
  std::vector<double> load(capacities.size(), 0.0);
  for (int v = 0; v < g.n; ++v) load[part[v]] += g.vweight[v];
  double worst = 0.0;
  for (std::size_t k = 0; k < capacities.size(); ++k)
    worst = std::max(worst, load[k] - capacities[k]);
  return worst;
}

/// One multilevel V-cycle (coarsen, place, uncoarsen + refine) over the
/// prebuilt base hypergraph. Randomness comes from `rng`, so successive
/// calls explore different matchings and refinement orders.
std::vector<NodeId> run_vcycle(const Hypergraph& base,
                               const std::vector<double>& capacities,
                               double max_vertex_weight,
                               const HypergraphOptions& options,
                               common::Rng& rng,
                               common::Histogram& level_count) {
  std::vector<Hypergraph> levels;
  std::vector<std::vector<int>> maps;  // maps[l]: levels[l] -> levels[l+1]
  levels.push_back(base);
  while (levels.back().n > options.coarsen_to) {
    std::vector<int> coarse_of;
    Hypergraph coarse =
        coarsen(levels.back(), rng, max_vertex_weight, coarse_of);
    if (coarse.n >= levels.back().n) break;  // matching stalled
    maps.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }
  level_count.observe(levels.size());

  std::vector<NodeId> part = initial_partition(levels.back(), capacities);
  refine(levels.back(), capacities, part, options.refinement_passes, rng);

  for (int level = static_cast<int>(maps.size()) - 1; level >= 0; --level) {
    const Hypergraph& fine = levels[static_cast<std::size_t>(level)];
    std::vector<NodeId> fine_part(static_cast<std::size_t>(fine.n));
    for (int v = 0; v < fine.n; ++v)
      fine_part[v] = part[maps[static_cast<std::size_t>(level)][v]];
    part = std::move(fine_part);
    refine(fine, capacities, part, options.refinement_passes, rng);
  }
  return part;
}

}  // namespace

Placement hypergraph_placement(const CcaInstance& instance,
                               const HypergraphOptions& options) {
  CCA_CHECK(options.coarsen_to >= 2);
  CCA_CHECK(options.restarts >= 1);
  // Named stream: one user seed drives multilevel AND hypergraph in the
  // same bench process without replaying a shared random sequence.
  common::Rng rng(common::named_stream_seed(options.seed, "core.hypergraph"));
  auto& reg = common::MetricsRegistry::global();
  static common::Counter& runs = reg.counter("core.hypergraph.runs");
  static common::Histogram& level_count =
      reg.histogram("core.hypergraph.levels");
  runs.add();

  const Hypergraph base = build_base(instance);
  const std::vector<double>& capacities = instance.node_capacities();
  double min_capacity = instance.node_capacity(0);
  for (int k = 1; k < instance.num_nodes(); ++k)
    min_capacity = std::min(min_capacity, instance.node_capacity(k));
  // Coarse vertices stay well under a node so the initial partition can
  // always bin-pack them (the METIS max-vertex-weight rule).
  const double max_vertex_weight = 0.4 * min_capacity;

  // Restarted V-cycles: heavy-edge matching is greedy and seed-sensitive,
  // so a handful of independent cycles scored on the EXACT objective is
  // far more robust than any single tuned cycle. Restarts draw from one
  // sequential rng stream, keeping the whole search deterministic per
  // seed. Feasibility ranks above cost so an overflowing cycle never
  // beats a feasible one.
  std::vector<NodeId> best;
  double best_cost = 0.0, best_over = 0.0;
  for (int r = 0; r < options.restarts; ++r) {
    std::vector<NodeId> part = run_vcycle(base, capacities, max_vertex_weight,
                                          options, rng, level_count);
    const double cost = lambda_cost(base, part);
    const double over = max_overflow(base, part, capacities);
    if (best.empty() || over < best_over - 1e-12 ||
        (over < best_over + 1e-12 && cost < best_cost)) {
      best = std::move(part);
      best_cost = cost;
      best_over = over;
    }
  }
  return best;
}

double trace_lambda_cost(const trace::QueryTrace& trace,
                         const std::vector<NodeId>& keyword_to_node) {
  if (trace.empty()) return 0.0;
  double total = 0.0;
  std::vector<NodeId> nodes;
  for (const trace::Query& q : trace.queries()) {
    nodes.clear();
    for (const trace::KeywordId k : q.keywords) {
      CCA_CHECK_MSG(k < keyword_to_node.size(),
                    "trace keyword " << k << " outside the placed vocabulary");
      nodes.push_back(keyword_to_node[k]);
    }
    std::sort(nodes.begin(), nodes.end());
    const auto lambda =
        std::unique(nodes.begin(), nodes.end()) - nodes.begin();
    total += static_cast<double>(lambda - 1);
  }
  return total / static_cast<double>(trace.size());
}

}  // namespace cca::core
