#include "core/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"

namespace cca::core {

namespace {

/// Working graph at one level of the multilevel hierarchy.
struct Graph {
  int n = 0;
  std::vector<double> vweight;                         // object bytes
  std::vector<std::vector<std::pair<int, double>>> adj;  // (nbr, cut cost)
  std::vector<std::optional<NodeId>> pin;
};

Graph build_base_graph(const CcaInstance& instance) {
  Graph g;
  g.n = instance.num_objects();
  g.vweight = instance.object_sizes();
  g.adj.resize(static_cast<std::size_t>(g.n));
  g.pin.resize(static_cast<std::size_t>(g.n));
  for (int i = 0; i < g.n; ++i) g.pin[i] = instance.pinned_node(i);

  // Merge parallel pairs into single weighted edges.
  std::unordered_map<std::uint64_t, double> edges;
  for (const PairWeight& p : instance.pairs()) {
    if (p.cost() <= 0.0) continue;
    edges[(static_cast<std::uint64_t>(p.i) << 32) |
          static_cast<std::uint32_t>(p.j)] += p.cost();
  }
  for (const auto& [key, weight] : edges) {
    const int i = static_cast<int>(key >> 32);
    const int j = static_cast<int>(key & 0xFFFFFFFFULL);
    g.adj[i].push_back({j, weight});
    g.adj[j].push_back({i, weight});
  }
  return g;
}

/// Heavy-edge matching + contraction. Returns the coarser graph and fills
/// coarse_of (fine vertex -> coarse vertex). Pinned vertices only merge
/// with vertices of the same (or no) pin, and no match may create a
/// coarse vertex heavier than `max_weight` — otherwise contracted blobs
/// outgrow node capacity and no later refinement can rebalance them.
Graph coarsen(const Graph& g, common::Rng& rng, double max_weight,
              std::vector<int>& coarse_of) {
  std::vector<int> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  for (int i = g.n - 1; i > 0; --i)
    std::swap(order[i],
              order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);

  std::vector<int> match(static_cast<std::size_t>(g.n), -1);
  const auto pins_compatible = [&](int a, int b) {
    return !g.pin[a] || !g.pin[b] || *g.pin[a] == *g.pin[b];
  };
  for (int v : order) {
    if (match[v] >= 0) continue;
    int best = -1;
    double best_weight = 0.0;
    for (const auto& [u, w] : g.adj[v]) {
      if (u == v || match[u] >= 0 || !pins_compatible(v, u)) continue;
      if (g.vweight[v] + g.vweight[u] > max_weight) continue;
      if (w > best_weight) {
        best = u;
        best_weight = w;
      }
    }
    if (best >= 0) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  coarse_of.assign(static_cast<std::size_t>(g.n), -1);
  Graph coarse;
  for (int v = 0; v < g.n; ++v) {
    if (coarse_of[v] >= 0) continue;
    const int partner = match[v];
    const int c = coarse.n++;
    coarse_of[v] = c;
    double weight = g.vweight[v];
    std::optional<NodeId> pin = g.pin[v];
    if (partner != v) {
      coarse_of[partner] = c;
      weight += g.vweight[partner];
      if (!pin) pin = g.pin[partner];
    }
    coarse.vweight.push_back(weight);
    coarse.pin.push_back(pin);
  }

  coarse.adj.resize(static_cast<std::size_t>(coarse.n));
  std::unordered_map<std::uint64_t, double> edges;
  for (int v = 0; v < g.n; ++v) {
    for (const auto& [u, w] : g.adj[v]) {
      if (u <= v) continue;  // each undirected edge once
      const int cv = coarse_of[v], cu = coarse_of[u];
      if (cv == cu) continue;  // contracted away
      const int lo = std::min(cv, cu), hi = std::max(cv, cu);
      edges[(static_cast<std::uint64_t>(lo) << 32) |
            static_cast<std::uint32_t>(hi)] += w;
    }
  }
  for (const auto& [key, weight] : edges) {
    const int i = static_cast<int>(key >> 32);
    const int j = static_cast<int>(key & 0xFFFFFFFFULL);
    coarse.adj[i].push_back({j, weight});
    coarse.adj[j].push_back({i, weight});
  }
  return coarse;
}

/// Greedy affinity placement of a (coarse) graph: big vertices first, each
/// to the node holding most of its edge weight among nodes with room.
std::vector<NodeId> initial_partition(const Graph& g,
                                      const std::vector<double>& capacities) {
  const int N = static_cast<int>(capacities.size());
  std::vector<double> remaining = capacities;
  std::vector<NodeId> part(static_cast<std::size_t>(g.n), -1);

  std::vector<int> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (g.vweight[a] != g.vweight[b]) return g.vweight[a] > g.vweight[b];
    return a < b;
  });

  const auto place = [&](int v, NodeId k) {
    part[v] = k;
    remaining[k] -= g.vweight[v];
  };
  for (int v = 0; v < g.n; ++v)
    if (g.pin[v]) place(v, *g.pin[v]);

  std::vector<double> affinity(static_cast<std::size_t>(N));
  for (int v : order) {
    if (part[v] >= 0) continue;
    std::fill(affinity.begin(), affinity.end(), 0.0);
    for (const auto& [u, w] : g.adj[v])
      if (part[u] >= 0) affinity[part[u]] += w;
    NodeId best = -1;
    for (int k = 0; k < N; ++k) {
      if (remaining[k] < g.vweight[v]) continue;
      if (best < 0 || affinity[k] > affinity[best] ||
          (affinity[k] == affinity[best] && remaining[k] > remaining[best]))
        best = k;
    }
    if (best < 0) {  // nothing fits: least-loaded fallback
      best = 0;
      for (int k = 1; k < N; ++k)
        if (remaining[k] > remaining[best]) best = k;
    }
    place(v, best);
  }
  return part;
}

/// Kernighan-Lin style single-vertex refinement under capacity.
void refine(const Graph& g, const std::vector<double>& capacities,
            std::vector<NodeId>& part, int passes, common::Rng& rng) {
  const int N = static_cast<int>(capacities.size());
  std::vector<double> load(static_cast<std::size_t>(N), 0.0);
  for (int v = 0; v < g.n; ++v) load[part[v]] += g.vweight[v];

  std::vector<int> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> affinity(static_cast<std::size_t>(N));

  for (int pass = 0; pass < passes; ++pass) {
    for (int i = g.n - 1; i > 0; --i)
      std::swap(order[i],
                order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
    bool moved = false;
    for (int v : order) {
      if (g.pin[v] || g.adj[v].empty()) continue;
      std::fill(affinity.begin(), affinity.end(), 0.0);
      for (const auto& [u, w] : g.adj[v]) affinity[part[u]] += w;
      const NodeId current = part[v];
      NodeId best = current;
      double best_gain = 0.0;
      for (int k = 0; k < N; ++k) {
        if (k == current) continue;
        if (load[k] + g.vweight[v] > capacities[k]) continue;
        const double gain = affinity[k] - affinity[current];
        if (gain > best_gain) {
          best = k;
          best_gain = gain;
        }
      }
      if (best != current) {
        load[current] -= g.vweight[v];
        load[best] += g.vweight[v];
        part[v] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Rebalance pass: gain moves never evict from an overloaded node on
  // their own (overload is invisible to the cut objective), so explicitly
  // drain nodes above capacity, cheapest evictions first. When no
  // capacity-respecting destination exists the overflow must still
  // surface — silently returning an over-capacity node poisons every
  // downstream feasibility check — so the smallest unpinned object spills
  // to the least-loaded node (deterministic tie-break: lowest index) and
  // the event is counted in core.multilevel.capacity_violations.
  static common::Counter& capacity_violations =
      common::MetricsRegistry::global().counter(
          "core.multilevel.capacity_violations");
  for (int k = 0; k < N; ++k) {
    // Terminates without a guard: every iteration moves one object off
    // node k or proves none is movable.
    while (load[k] > capacities[k]) {
      int victim = -1;
      NodeId victim_dest = -1;
      double victim_loss = 0.0;
      for (int v = 0; v < g.n; ++v) {
        if (part[v] != k || g.pin[v]) continue;
        std::fill(affinity.begin(), affinity.end(), 0.0);
        for (const auto& [u, w] : g.adj[v]) affinity[part[u]] += w;
        for (int t = 0; t < N; ++t) {
          if (t == k || load[t] + g.vweight[v] > capacities[t]) continue;
          const double loss = affinity[k] - affinity[t];
          if (victim < 0 || loss < victim_loss) {
            victim = v;
            victim_dest = t;
            victim_loss = loss;
          }
        }
      }
      if (victim < 0) {
        // No destination has room. Spill the smallest unpinned object to
        // the least-loaded other node so the overflow is spread (and
        // visible there) rather than silently parked on k.
        int spill = -1;
        for (int v = 0; v < g.n; ++v) {
          if (part[v] != k || g.pin[v]) continue;
          if (spill < 0 || g.vweight[v] < g.vweight[spill]) spill = v;
        }
        capacity_violations.add();
        // Everything on k pinned, or nowhere else to spill: unavoidable.
        if (spill < 0 || N < 2) break;
        NodeId dest = k == 0 ? 1 : 0;
        for (int t = 0; t < N; ++t)
          if (t != k && load[t] < load[dest]) dest = t;
        load[k] -= g.vweight[spill];
        load[dest] += g.vweight[spill];
        part[spill] = dest;
      } else {
        load[k] -= g.vweight[victim];
        load[victim_dest] += g.vweight[victim];
        part[victim] = victim_dest;
      }
    }
  }
}

}  // namespace

Placement multilevel_placement(const CcaInstance& instance,
                               const MultilevelOptions& options) {
  CCA_CHECK(options.coarsen_to >= 2);
  // Named stream: running multilevel and hypergraph in one process under
  // one user seed must never replay the same random sequence.
  common::Rng rng(common::named_stream_seed(options.seed, "core.multilevel"));

  // --- Coarsening phase. ---
  std::vector<Graph> levels;
  std::vector<std::vector<int>> maps;  // maps[l]: levels[l] -> levels[l+1]
  levels.push_back(build_base_graph(instance));
  double min_capacity = instance.node_capacity(0);
  for (int k = 1; k < instance.num_nodes(); ++k)
    min_capacity = std::min(min_capacity, instance.node_capacity(k));
  // Coarse vertices stay well under a node so the initial partition can
  // always bin-pack them (METIS's max-vertex-weight rule).
  const double max_vertex_weight = 0.4 * min_capacity;
  while (levels.back().n > options.coarsen_to) {
    std::vector<int> coarse_of;
    Graph coarse = coarsen(levels.back(), rng, max_vertex_weight, coarse_of);
    if (coarse.n >= levels.back().n) break;  // matching stalled
    maps.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  // --- Initial partition at the coarsest level. ---
  const std::vector<double>& capacities = instance.node_capacities();
  std::vector<NodeId> part = initial_partition(levels.back(), capacities);
  refine(levels.back(), capacities, part, options.refinement_passes, rng);

  // --- Uncoarsening with refinement at each level. ---
  for (int level = static_cast<int>(maps.size()) - 1; level >= 0; --level) {
    const Graph& fine = levels[static_cast<std::size_t>(level)];
    std::vector<NodeId> fine_part(static_cast<std::size_t>(fine.n));
    for (int v = 0; v < fine.n; ++v)
      fine_part[v] = part[maps[static_cast<std::size_t>(level)][v]];
    part = std::move(fine_part);
    refine(fine, capacities, part, options.refinement_passes, rng);
  }
  return part;
}

}  // namespace cca::core
