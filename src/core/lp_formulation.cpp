#include "core/lp_formulation.hpp"

#include <string>

#include "common/check.hpp"
#include "lp/solver.hpp"

namespace cca::core {

LpFormulation::LpFormulation(const CcaInstance& instance)
    : instance_(&instance),
      num_nodes_(instance.num_nodes()),
      num_objects_(instance.num_objects()) {
  // x_{i,k} columns, laid out object-major so x_column() is arithmetic.
  // The upper bound is +inf rather than 1: sum_k x_ik = 1 with x >= 0
  // already implies x_ik <= 1, and omitting the bound keeps the canonical
  // form free of |T| * |N| extra rows.
  for (int i = 0; i < num_objects_; ++i)
    for (int k = 0; k < num_nodes_; ++k)
      model_.add_variable(0.0, lp::kInfinity, 0.0);

  // y_{i,j,k} columns carry cost r*w/2 each (the z-substitution).
  for (const PairWeight& p : instance.pairs()) {
    if (p.cost() <= 0.0) continue;
    for (int k = 0; k < num_nodes_; ++k) {
      const int y = model_.add_variable(0.0, lp::kInfinity, p.cost() * 0.5);
      // (6): y_ijk - x_ik + x_jk >= 0
      model_.add_constraint(lp::Relation::kGreaterEqual, 0.0,
                            {{y, 1.0},
                             {x_column(p.i, k), -1.0},
                             {x_column(p.j, k), 1.0}});
      // (7): y_ijk + x_ik - x_jk >= 0
      model_.add_constraint(lp::Relation::kGreaterEqual, 0.0,
                            {{y, 1.0},
                             {x_column(p.i, k), 1.0},
                             {x_column(p.j, k), -1.0}});
    }
  }

  // (5): each object fully placed.
  for (int i = 0; i < num_objects_; ++i) {
    std::vector<lp::Term> terms;
    terms.reserve(static_cast<std::size_t>(num_nodes_));
    for (int k = 0; k < num_nodes_; ++k) terms.push_back({x_column(i, k), 1.0});
    model_.add_constraint(lp::Relation::kEqual, 1.0, std::move(terms));
  }

  // (9): per-node capacity.
  for (int k = 0; k < num_nodes_; ++k) {
    std::vector<lp::Term> terms;
    terms.reserve(static_cast<std::size_t>(num_objects_));
    for (int i = 0; i < num_objects_; ++i) {
      if (instance.object_size(i) > 0.0)
        terms.push_back({x_column(i, k), instance.object_size(i)});
    }
    model_.add_constraint(lp::Relation::kLessEqual, instance.node_capacity(k),
                          std::move(terms));
  }

  // Extra resource dimensions (Sec. 3.3): same shape as (9), one row per
  // node per resource.
  for (const Resource& res : instance.resources()) {
    for (int k = 0; k < num_nodes_; ++k) {
      std::vector<lp::Term> terms;
      for (int i = 0; i < num_objects_; ++i) {
        if (res.demands[i] > 0.0)
          terms.push_back({x_column(i, k), res.demands[i]});
      }
      model_.add_constraint(lp::Relation::kLessEqual, res.capacities[k],
                            std::move(terms));
    }
  }

  // Pins: x_{i, pin(i)} = 1 (with (5) this zeroes the other nodes).
  for (int i = 0; i < num_objects_; ++i) {
    if (auto k = instance.pinned_node(i))
      model_.add_constraint(lp::Relation::kEqual, 1.0,
                            {{x_column(i, *k), 1.0}});
  }
}

LpSizeStats LpFormulation::stats() const {
  return LpSizeStats{model_.num_variables(), model_.num_constraints(),
                     static_cast<long>(model_.num_nonzeros())};
}

FractionalPlacement LpFormulation::extract(
    const lp::Solution& solution) const {
  CCA_CHECK_MSG(solution.optimal(), "extracting from non-optimal solution");
  FractionalPlacement x(num_objects_, num_nodes_);
  for (int i = 0; i < num_objects_; ++i) {
    for (int k = 0; k < num_nodes_; ++k) {
      // Clamp solver round-off into [0, 1].
      double v = solution.x[x_column(i, k)];
      if (v < 0.0) v = 0.0;
      if (v > 1.0) v = 1.0;
      x.set(i, k, v);
    }
  }
  return x;
}

FractionalPlacement solve_cca_lp(const CcaInstance& instance,
                                 lp::SolverOptions options,
                                 lp::WarmStartCache* warm_cache) {
  const LpFormulation formulation(instance);
  const lp::Solution solution =
      lp::Solver(lp::SolverKind::kAuto, options)
          .solve(formulation.model(), warm_cache)
          .solution;
  CCA_CHECK_MSG(solution.optimal(),
                "CCA LP not solved to optimality: status "
                    << lp::to_string(solution.status));
  return formulation.extract(solution);
}

}  // namespace cca::core
