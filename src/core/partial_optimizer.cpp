#include "core/partial_optimizer.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "common/check.hpp"
#include "common/metrics.hpp"

namespace cca::core {

PartialOptimizer::PartialOptimizer(
    const trace::QueryTrace& trace,
    const std::vector<std::uint64_t>& index_sizes,
    PartialOptimizerConfig config)
    : config_(config), index_sizes_(index_sizes) {
  CCA_CHECK(config.num_nodes >= 1);
  CCA_CHECK(config.scope >= 1);
  CCA_CHECK_MSG(config.capacity_slack >= 1.0,
                "capacity below the average load cannot hold the data");
  CCA_CHECK(index_sizes.size() >= trace.vocabulary_size());
  const std::size_t vocab = index_sizes.size();

  pairs_ = mine_pair_weights(trace, index_sizes_, config.operation_model,
                             config.miner);
  ranking_ = importance_ranking(pairs_, index_sizes_);
  scope_.assign(ranking_.begin(),
                ranking_.begin() +
                    std::min<std::size_t>(config.scope, ranking_.size()));

  object_of_keyword_.assign(vocab, -1);
  for (std::size_t pos = 0; pos < scope_.size(); ++pos)
    object_of_keyword_[scope_[pos]] = static_cast<int>(pos);

  // Hash nodes for every keyword; only tail keywords actually use them,
  // but kRandom reuses the full map.
  tail_nodes_.resize(vocab);
  for (std::size_t k = 0; k < vocab; ++k)
    tail_nodes_[k] = static_cast<NodeId>(
        tail_node(config.hash_tail, static_cast<trace::KeywordId>(k),
                  config.num_nodes));

  tail_loads_.assign(static_cast<std::size_t>(config.num_nodes), 0.0);
  double total_bytes = 0.0;
  for (std::size_t k = 0; k < vocab; ++k) {
    total_bytes += static_cast<double>(index_sizes_[k]);
    if (object_of_keyword_[k] < 0)
      tail_loads_[tail_nodes_[k]] += static_cast<double>(index_sizes_[k]);
  }
  capacity_ = config.capacity_slack * total_bytes /
              static_cast<double>(config.num_nodes);

  // The scoped instance: objects are scope keywords; capacity available to
  // the optimizer is what the hashed tail leaves free on each node.
  std::vector<double> sizes(scope_.size());
  for (std::size_t pos = 0; pos < scope_.size(); ++pos)
    sizes[pos] = static_cast<double>(index_sizes_[scope_[pos]]);
  std::vector<double> capacities(static_cast<std::size_t>(config.num_nodes));
  for (int k = 0; k < config.num_nodes; ++k)
    capacities[k] = std::max(0.0, capacity_ - tail_loads_[k]);

  std::vector<PairWeight> scoped_pairs;
  for (const KeywordPairWeight& p : pairs_) {
    const int oi = object_of_keyword_[p.a];
    const int oj = object_of_keyword_[p.b];
    if (oi < 0 || oj < 0) continue;  // pair leaves the scope: tail-handled
    scoped_pairs.push_back(PairWeight{oi, oj, p.r, p.w});
  }
  instance_ = std::make_unique<CcaInstance>(
      std::move(sizes), std::move(capacities), std::move(scoped_pairs));

  // Whole-query view for the hypergraph strategy: each multi-keyword query
  // shape becomes a hyperedge over its in-scope keywords. Out-of-scope
  // pins are dropped (the hashed tail places them identically for every
  // strategy); edges left with < 2 pins vanish inside set_hyperedges.
  std::vector<Hyperedge> scoped_edges;
  for (const KeywordHyperedge& e : build_hyperedges(trace)) {
    Hyperedge scoped;
    scoped.weight = e.weight;
    for (const trace::KeywordId k : e.pins)
      if (object_of_keyword_[k] >= 0)
        scoped.pins.push_back(object_of_keyword_[k]);
    if (scoped.pins.size() >= 2) scoped_edges.push_back(std::move(scoped));
  }
  instance_->set_hyperedges(std::move(scoped_edges));
}

PlacementPlan PartialOptimizer::run(std::string_view strategy) const {
  const StrategyFn& fn = StrategyRegistry::global().at(strategy);
  auto& reg = common::MetricsRegistry::global();
  static common::Counter& runs = reg.counter("core.optimizer.runs");
  static common::Timer& strategy_timer = reg.timer("core.optimizer.strategy");
  static common::Timer& assemble_timer = reg.timer("core.optimizer.assemble");
  runs.add();

  Placement scope_placement;
  {
    const common::ScopedTimer timer(strategy_timer);
    scope_placement = fn(*this);
  }
  const common::ScopedTimer timer(assemble_timer);
  return assemble(strategy, scope_placement);
}

Placement PartialOptimizer::hash_scope_placement() const {
  // Pure hash for everything: the scoped placement is just the hash nodes
  // of the scope keywords.
  Placement scope_placement(scope_.size());
  for (std::size_t pos = 0; pos < scope_.size(); ++pos)
    scope_placement[pos] = tail_nodes_[scope_[pos]];
  return scope_placement;
}

PlacementPlan PartialOptimizer::assemble(
    std::string_view strategy, const Placement& scope_placement) const {
  CCA_CHECK(scope_placement.size() == scope_.size());
  PlacementPlan plan;
  plan.strategy = std::string(strategy);
  plan.scope = scope_;
  plan.scoped_report = evaluate_placement(*instance_, scope_placement);

  const std::size_t vocab = tail_nodes_.size();
  plan.keyword_to_node.resize(vocab);
  plan.node_loads.assign(static_cast<std::size_t>(config_.num_nodes), 0.0);
  for (std::size_t k = 0; k < vocab; ++k) {
    const int obj = object_of_keyword_[k];
    const NodeId node = obj >= 0 ? scope_placement[obj] : tail_nodes_[k];
    plan.keyword_to_node[k] = node;
    plan.node_loads[node] += static_cast<double>(index_sizes_[k]);
  }
  const double base_capacity = capacity_;
  for (double load : plan.node_loads)
    plan.max_load_factor =
        std::max(plan.max_load_factor,
                 base_capacity > 0.0 ? load / base_capacity : 0.0);

  // Per-node realized load factors, in percent (histogram rather than a
  // gauge: benches assemble plans from parallel grid cells).
  if (common::metrics_enabled()) {
    static common::Histogram& load_pct =
        common::MetricsRegistry::global().histogram(
            "core.plan.node_load_factor_pct");
    for (double load : plan.node_loads)
      load_pct.observe(static_cast<std::uint64_t>(
          base_capacity > 0.0 ? 100.0 * load / base_capacity : 0.0));
  }
  return plan;
}

}  // namespace cca::core
