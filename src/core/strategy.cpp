#include "core/strategy.hpp"

#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include <algorithm>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/component_solver.hpp"
#include "core/hypergraph.hpp"
#include "core/lp_formulation.hpp"
#include "core/multilevel.hpp"
#include "core/partial_optimizer.hpp"
#include "core/placements.hpp"
#include "core/rounding.hpp"

namespace cca::core {

namespace {

Placement lprr_placement(const PartialOptimizer& opt) {
  const PartialOptimizerConfig& config = opt.config();
  const CcaInstance& instance = opt.scoped_instance();
  ComponentSolverOptions solver_options{config.seed, config.component_fill};
  lp::WarmStartCache* cache =
      config.lp_warm_start ? opt.lp_warm_cache() : nullptr;
  solver_options.warm_cache = cache;
  FractionalPlacement fractional =
      config.use_full_lp
          ? solve_cca_lp(instance, {}, cache)
          : ComponentLpSolver(solver_options).solve(instance);
  common::Rng rng(config.seed ^ 0xC0FFEE1234ULL);
  RoundingResult rounded =
      round_best_of(fractional, instance, config.rounding, rng);
  return rounded.placement;
}

}  // namespace

struct StrategyRegistry::Impl {
  mutable std::mutex mutex;
  // Transparent comparator: lookups by string_view without a copy.
  std::map<std::string, StrategyFn, std::less<>> strategies;
};

StrategyRegistry::StrategyRegistry() {
  // Built-ins, registered eagerly so the table is complete the moment
  // global() returns. "random-hash" is the paper's production baseline;
  // "lprr" is its contribution (Fig. 4 LP + Algorithm 2.1 rounding).
  add("random-hash", [](const PartialOptimizer& opt) {
    return opt.hash_scope_placement();
  });
  add("greedy", [](const PartialOptimizer& opt) {
    return greedy_placement(opt.scoped_instance(), opt.config().greedy);
  });
  add("multilevel", [](const PartialOptimizer& opt) {
    MultilevelOptions options = opt.config().multilevel;
    options.seed = opt.config().seed;
    return multilevel_placement(opt.scoped_instance(), options);
  });
  add("hypergraph", [](const PartialOptimizer& opt) {
    HypergraphOptions options = opt.config().hypergraph;
    options.seed = opt.config().seed;
    return hypergraph_placement(opt.scoped_instance(), options);
  });
  add("lprr", lprr_placement);
}

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry* instance = new StrategyRegistry();
  return *instance;
}

StrategyRegistry::Impl& StrategyRegistry::impl() const {
  static Impl* instance = new Impl();
  return *instance;
}

void StrategyRegistry::add(std::string name, StrategyFn fn) {
  CCA_CHECK_MSG(!name.empty(), "strategy name must be non-empty");
  CCA_CHECK(fn != nullptr);
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  const auto [it, inserted] =
      i.strategies.emplace(std::move(name), std::move(fn));
  CCA_CHECK_MSG(inserted,
                "strategy '" << it->first << "' is already registered");
}

const StrategyFn& StrategyRegistry::at(std::string_view name) const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.strategies.find(name);
  if (it == i.strategies.end()) {
    std::ostringstream known;
    for (const auto& [key, fn] : i.strategies) {
      if (known.tellp() > 0) known << ", ";
      known << key;
    }
    CCA_CHECK_MSG(false, "unknown strategy '" << name << "' (registered: "
                                              << known.str() << ")");
  }
  return it->second;
}

bool StrategyRegistry::contains(std::string_view name) const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  return i.strategies.find(name) != i.strategies.end();
}

std::vector<std::string> StrategyRegistry::names() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<std::string> out;
  out.reserve(i.strategies.size());
  for (const auto& [key, fn] : i.strategies) out.push_back(key);
  return out;
}

std::vector<std::string> parse_strategy_list(std::string_view csv) {
  const StrategyRegistry& registry = StrategyRegistry::global();
  const std::vector<std::string> known = registry.names();
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string_view name =
        csv.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                          : comma - start);
    if (!name.empty()) {
      if (!registry.contains(name)) {
        // Same did-you-mean shape a bad enum-valued bench flag gets, so a
        // typo'd --strategies value fails like every other flag value.
        std::ostringstream message;
        message << "unknown strategy '" << name
                << "' (registered: " << common::quote_candidates(known)
                << ")";
        const std::string hint =
            common::suggest_value(std::string(name), known);
        if (!hint.empty()) message << " (did you mean '" << hint << "'?)";
        CCA_CHECK_MSG(false, message.str());
      }
      CCA_CHECK_MSG(std::find(out.begin(), out.end(), name) == out.end(),
                    "duplicate strategy '"
                        << name << "' in list '" << csv
                        << "' — each strategy may appear once");
      out.emplace_back(name);
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  CCA_CHECK_MSG(!out.empty(), "strategy list is empty");
  return out;
}

}  // namespace cca::core
