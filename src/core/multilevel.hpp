// Multilevel k-way partitioning — the modern comparator.
//
// The paper compares LPRR only against random hashing and a one-pass
// greedy heuristic. The strongest practical alternative for "minimize cut
// weight under balance constraints" is multilevel graph partitioning
// (METIS-family): coarsen the correlation graph by heavy-edge matching,
// partition the small coarse graph greedily, then uncoarsen while
// refining with single-vertex Kernighan-Lin moves. This module implements
// that scheme directly on the CCA objective (cut = sum of r*w over
// separated pairs) under per-node storage capacities, giving the
// evaluation a baseline the paper lacked.
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace cca::core {

struct MultilevelOptions {
  /// Stop coarsening once this few vertices remain (or matching stalls).
  int coarsen_to = 64;
  /// Refinement sweeps per uncoarsening level.
  int refinement_passes = 4;
  /// Seed for matching and tie-breaking order.
  std::uint64_t seed = 1;
};

/// Partitions `instance`'s objects over its nodes. Honours pins. Strives
/// for capacity feasibility (coarse placement and refinement both respect
/// it); when an object fits nowhere it falls back to the least-loaded
/// node, like the greedy baseline, so a complete placement is always
/// returned.
Placement multilevel_placement(const CcaInstance& instance,
                               const MultilevelOptions& options = {});

}  // namespace cca::core
