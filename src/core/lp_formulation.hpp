// The Fig. 4 linear program: the integer CCA program relaxed to an LP.
//
//   minimize   sum_{(i,j) in E} r(i,j) w(i,j) z_ij                      (3)
//   subject to sum_k x_ik = 1                          for each object  (5)
//              y_ijk >= x_ik - x_jk,  y_ijk >= x_jk - x_ik           (6, 7)
//              z_ij = (1/2) sum_k y_ijk                                 (8)
//              sum_i s(i) x_ik <= c(k)                 for each node    (9)
//              x, y >= 0                     (relaxation of (4): x binary)
//
// We substitute (8) into (3) — putting cost r*w/2 directly on each y_ijk —
// which removes the z variables without changing the program. Pinned
// objects add x_ik = 1 rows (the minimum n-way-cut regime of Theorem 1).
//
// Variable/constraint counts match Sec. 3.1: O(|T| |N| + |E| |N|) of each,
// i.e. O(|T| |N|) when E is sparse. These counts are exposed for the
// offline-computation-cost experiment.
#pragma once

#include "core/instance.hpp"
#include "lp/basis.hpp"
#include "lp/model.hpp"
#include "lp/solution.hpp"

namespace cca::core {

/// Size report for Sec. 3.1 (offline computation overhead).
struct LpSizeStats {
  long num_variables = 0;
  long num_constraints = 0;
  long num_nonzeros = 0;
};

class LpFormulation {
 public:
  /// Builds the relaxed Fig. 4 model for `instance`.
  explicit LpFormulation(const CcaInstance& instance);

  const lp::Model& model() const { return model_; }
  LpSizeStats stats() const;

  /// Extracts the x_{i,k} block of an LP solution as a placement matrix.
  FractionalPlacement extract(const lp::Solution& solution) const;

  /// Column index of x_{i,k} in the model.
  int x_column(ObjectId i, NodeId k) const {
    return i * num_nodes_ + k;
  }

 private:
  const CcaInstance* instance_;
  lp::Model model_;
  int num_nodes_ = 0;
  int num_objects_ = 0;
};

/// Solves the Fig. 4 LP for `instance` with the simplex solvers and returns
/// the fractional placement. Throws common::Error if the LP is infeasible
/// (capacities cannot hold the objects even fractionally) or hits the
/// iteration limit. When `warm_cache` is non-null the solve warm-starts
/// from the cache's basis (when usable) and stores its final basis back —
/// see lp/basis.hpp; hints never change the optimum reported.
FractionalPlacement solve_cca_lp(const CcaInstance& instance,
                                 lp::SolverOptions options = {},
                                 lp::WarmStartCache* warm_cache = nullptr);

}  // namespace cca::core
