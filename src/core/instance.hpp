// The Capacity-Constrained Assignment (CCA) problem instance — Sec. 2.1.
//
// Given objects T with sizes s(i), nodes N with capacities c(k), sparse
// pair correlations r(i, j) and pair communication costs w(i, j), find a
// placement f : T -> N minimizing
//
//     sum_{(i,j): f(i) != f(j)}  r(i,j) * w(i,j)
//
// subject to  sum_{i: f(i)=k} s(i) <= c(k)  for every node k.
//
// Instances may pin objects to nodes (f(i) fixed), which models the
// minimum n-way-cut reduction of Theorem 1 and lets tests exercise the
// non-degenerate regime of the LP relaxation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cca::core {

using ObjectId = int;
using NodeId = int;

/// One correlated pair with its communication model: `r` is the
/// co-request probability, `w` the bytes moved when the pair is split.
struct PairWeight {
  ObjectId i = 0;
  ObjectId j = 0;
  double r = 0.0;
  double w = 0.0;

  /// Contribution to the objective when the pair is separated.
  double cost() const { return r * w; }
};

/// A complete (integral) placement: object index -> node index.
using Placement = std::vector<NodeId>;

/// One multi-object operation as a *hyperedge*: the distinct objects it
/// touches (pins, sorted ascending) and its rate weight (how often the
/// operation runs). Under a placement the edge costs
/// weight * (lambda - 1), where lambda is the number of distinct nodes
/// its pins land on — the connectivity-minus-one objective of multilevel
/// hypergraph partitioning. Pairwise correlations are the 2-pin special
/// case; keeping the full pin set avoids the two-smallest-objects
/// approximation that degrades as operations grow past ~2 objects.
struct Hyperedge {
  std::vector<ObjectId> pins;
  double weight = 0.0;

  int degree() const { return static_cast<int>(pins.size()); }
};

/// An additional per-node capacity dimension (Sec. 3.3): e.g. network
/// bandwidth or CPU. Each object demands `demands[i]` of the resource;
/// each node offers `capacities[k]`. Handled exactly like storage: one
/// more row family in the LP, one more check everywhere else.
struct Resource {
  std::string name;
  std::vector<double> demands;     // indexed by object
  std::vector<double> capacities;  // indexed by node
};

class CcaInstance {
 public:
  CcaInstance(std::vector<double> object_sizes,
              std::vector<double> node_capacities,
              std::vector<PairWeight> pairs);

  int num_objects() const { return static_cast<int>(sizes_.size()); }
  int num_nodes() const { return static_cast<int>(capacities_.size()); }
  double object_size(ObjectId i) const { return sizes_[i]; }
  double node_capacity(NodeId k) const { return capacities_[k]; }
  const std::vector<double>& object_sizes() const { return sizes_; }
  const std::vector<double>& node_capacities() const { return capacities_; }
  const std::vector<PairWeight>& pairs() const { return pairs_; }

  double total_object_size() const { return total_size_; }

  /// Pins object `i` to node `k`: every feasible placement must honour it.
  void pin(ObjectId i, NodeId k);
  std::optional<NodeId> pinned_node(ObjectId i) const { return pins_[i]; }
  bool has_pins() const { return num_pins_ > 0; }

  /// Adds an extra capacity dimension (Sec. 3.3). Vector lengths must
  /// match the object / node counts; all values must be non-negative.
  void add_resource(Resource resource);
  const std::vector<Resource>& resources() const { return resources_; }

  /// Installs the whole-operation view of the workload: one weighted
  /// hyperedge per distinct multi-object operation. Pins are validated,
  /// deduplicated, and sorted; edges left with fewer than two pins are
  /// dropped (a single-object operation never communicates); identical
  /// pin sets merge, weights summed. Pairwise `pairs()` stay untouched —
  /// strategies choose which view they optimize.
  void set_hyperedges(std::vector<Hyperedge> edges);
  const std::vector<Hyperedge>& hyperedges() const { return hyperedges_; }
  bool has_hyperedges() const { return !hyperedges_.empty(); }

  /// Rate-weighted connectivity-minus-one objective of `placement` over
  /// the installed hyperedges: sum_e weight(e) * (lambda(e) - 1).
  double connectivity_cost(const Placement& placement) const;

  /// Upper bound on connectivity_cost: every pin on its own node
  /// (sum of weight * (degree - 1)). Normalization denominator.
  double total_connectivity_cost() const;

  /// Per-node demand totals of resource `r` under `placement`.
  std::vector<double> resource_loads(const Placement& placement,
                                     std::size_t r) const;

  /// Objective (1): total correlation-weighted communication cost of the
  /// separated pairs under `placement`.
  double communication_cost(const Placement& placement) const;

  /// Upper bound on the objective: cost when every pair is separated
  /// (sum of all pair costs). Normalization denominator for reports.
  double total_pair_cost() const;

  /// Per-node total object size under `placement`.
  std::vector<double> node_loads(const Placement& placement) const;

  /// max_k load(k) / capacity(k); <= 1 means capacity-feasible.
  double max_load_factor(const Placement& placement) const;

  /// True when `placement` satisfies capacities and pins.
  bool is_feasible(const Placement& placement) const;

 private:
  std::vector<double> sizes_;
  std::vector<double> capacities_;
  std::vector<PairWeight> pairs_;
  std::vector<Hyperedge> hyperedges_;
  std::vector<std::optional<NodeId>> pins_;
  std::vector<Resource> resources_;
  double total_size_ = 0.0;
  int num_pins_ = 0;
};

/// Fractional placement matrix x[i][k] — the LP-relaxation solution handed
/// to randomized rounding. Row-major: value(i, k) = x_{i,k}.
class FractionalPlacement {
 public:
  FractionalPlacement(int num_objects, int num_nodes)
      : num_objects_(num_objects),
        num_nodes_(num_nodes),
        x_(static_cast<std::size_t>(num_objects) * num_nodes, 0.0) {}

  int num_objects() const { return num_objects_; }
  int num_nodes() const { return num_nodes_; }

  double value(ObjectId i, NodeId k) const {
    return x_[static_cast<std::size_t>(i) * num_nodes_ + k];
  }
  void set(ObjectId i, NodeId k, double v) {
    x_[static_cast<std::size_t>(i) * num_nodes_ + k] = v;
  }

  /// The LP objective (3) at this point: sum over pairs of
  /// r*w * (1/2) * sum_k |x_ik - x_jk|.
  double lp_objective(const CcaInstance& instance) const;

  /// Largest violation of row-stochasticity (each row must sum to 1 with
  /// non-negative entries). Solver output should be ~0.
  double max_row_violation() const;

  /// Expected per-node loads sum_i s(i) x_{i,k}.
  std::vector<double> expected_loads(const CcaInstance& instance) const;

 private:
  int num_objects_, num_nodes_;
  std::vector<double> x_;
};

}  // namespace cca::core
