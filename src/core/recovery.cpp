#include "core/recovery.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/metrics.hpp"

namespace cca::core {

RecoveryResult RecoveryPlanner::replan(const CcaInstance& instance,
                                       const Placement& current,
                                       const std::vector<bool>& alive,
                                       const std::vector<double>& weights) const {
  CCA_CHECK(static_cast<int>(current.size()) == instance.num_objects());
  CCA_CHECK(static_cast<int>(alive.size()) == instance.num_nodes());
  CCA_CHECK_MSG(weights.empty() ||
                    static_cast<int>(weights.size()) == instance.num_objects(),
                "weights must be empty or cover every object");
  CCA_CHECK_MSG(config_.migration_budget_fraction >= 0.0,
                "negative migration budget");
  CCA_CHECK_MSG(config_.capacity_headroom > 0.0,
                "capacity headroom must be positive");
  CCA_CHECK_MSG(config_.rebuild_mbps > 0.0,
                "rebuild bandwidth must be positive");
  CCA_CHECK_MSG(std::count(alive.begin(), alive.end(), true) > 0,
                "recovery needs at least one surviving node");

  const auto weight_of = [&](ObjectId i) {
    return weights.empty() ? instance.object_size(i)
                           : weights[static_cast<std::size_t>(i)];
  };

  RecoveryResult result;
  result.placement = current;

  // The casualty list, and the live portion of each node's load. Bytes
  // parked on dead nodes do not occupy survivor capacity.
  std::vector<ObjectId> lost;
  std::vector<double> loads(static_cast<std::size_t>(instance.num_nodes()),
                            0.0);
  for (int i = 0; i < instance.num_objects(); ++i) {
    if (alive[static_cast<std::size_t>(current[i])]) {
      loads[static_cast<std::size_t>(current[i])] +=
          instance.object_size(i);
    } else {
      lost.push_back(i);
      ++result.objects_lost;
      result.weight_lost += weight_of(i);
    }
  }

  double budget =
      config_.migration_budget_fraction * instance.total_object_size();

  if (!lost.empty() && budget > 0.0) {
    // Most restoration value per migrated byte first; ties by id so the
    // order is deterministic.
    std::sort(lost.begin(), lost.end(), [&](ObjectId a, ObjectId b) {
      const double da = weight_of(a) / std::max(instance.object_size(a), 1e-12);
      const double db = weight_of(b) / std::max(instance.object_size(b), 1e-12);
      if (da != db) return da > db;
      return a < b;
    });

    // Per-object correlation mass toward each live node, maintained
    // incrementally as objects land (a recovered object attracts its
    // correlated siblings, so clusters re-form on the same survivor).
    // affinity[i][k] = sum of pair costs between i and objects on k.
    std::vector<std::vector<double>> affinity(
        static_cast<std::size_t>(instance.num_objects()),
        std::vector<double>(static_cast<std::size_t>(instance.num_nodes()),
                            0.0));
    for (const PairWeight& p : instance.pairs()) {
      const NodeId ni = result.placement[p.i];
      const NodeId nj = result.placement[p.j];
      if (alive[static_cast<std::size_t>(nj)])
        affinity[static_cast<std::size_t>(p.i)]
                [static_cast<std::size_t>(nj)] += p.cost();
      if (alive[static_cast<std::size_t>(ni)])
        affinity[static_cast<std::size_t>(p.j)]
                [static_cast<std::size_t>(ni)] += p.cost();
    }
    // Pairs incident to each object, for the incremental affinity update.
    std::vector<std::vector<const PairWeight*>> incident(
        static_cast<std::size_t>(instance.num_objects()));
    for (const PairWeight& p : instance.pairs()) {
      incident[static_cast<std::size_t>(p.i)].push_back(&p);
      incident[static_cast<std::size_t>(p.j)].push_back(&p);
    }

    // Bytes each survivor has been assigned to rebuild, for the
    // declustered destination rule and the makespan accounting.
    std::vector<double> rebuild_bytes(
        static_cast<std::size_t>(instance.num_nodes()), 0.0);

    for (const ObjectId i : lost) {
      const double size = instance.object_size(i);
      if (size > budget + 1e-9) continue;  // cannot afford this object
      NodeId best = -1;
      if (config_.rebuild_mode == RebuildMode::kSuccessor) {
        // The classic funnel: first alive ring successor of the dead
        // host with headroom. A contiguous dead rack drains through one
        // neighbour — the baseline declustering beats.
        for (int off = 1; off < instance.num_nodes(); ++off) {
          const int k = (current[i] + off) % instance.num_nodes();
          if (!alive[static_cast<std::size_t>(k)]) continue;
          const double ceiling =
              config_.capacity_headroom * instance.node_capacity(k);
          if (loads[static_cast<std::size_t>(k)] + size > ceiling + 1e-9)
            continue;
          best = k;
          break;
        }
      } else if (config_.rebuild_mode == RebuildMode::kDeclustered) {
        // Least rebuild-loaded survivor with headroom; ties by highest
        // affinity (keep what co-location the balance allows), then
        // lowest id via iteration order.
        double best_assigned = std::numeric_limits<double>::infinity();
        double best_affinity = -1.0;
        for (int k = 0; k < instance.num_nodes(); ++k) {
          if (!alive[static_cast<std::size_t>(k)]) continue;
          const double ceiling =
              config_.capacity_headroom * instance.node_capacity(k);
          if (loads[static_cast<std::size_t>(k)] + size > ceiling + 1e-9)
            continue;
          const double assigned = rebuild_bytes[static_cast<std::size_t>(k)];
          const double a = affinity[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(k)];
          if (assigned < best_assigned ||
              (assigned == best_assigned && a > best_affinity)) {
            best = k;
            best_assigned = assigned;
            best_affinity = a;
          }
        }
      } else {
        // Destination: highest affinity among survivors with headroom;
        // ties broken by most free capacity, then lowest node id.
        double best_affinity = -1.0;
        double best_free = -std::numeric_limits<double>::infinity();
        for (int k = 0; k < instance.num_nodes(); ++k) {
          if (!alive[static_cast<std::size_t>(k)]) continue;
          const double ceiling =
              config_.capacity_headroom * instance.node_capacity(k);
          if (loads[static_cast<std::size_t>(k)] + size > ceiling + 1e-9)
            continue;
          const double a = affinity[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(k)];
          const double free = ceiling - loads[static_cast<std::size_t>(k)];
          if (a > best_affinity ||
              (a == best_affinity && free > best_free)) {
            best = k;
            best_affinity = a;
            best_free = free;
          }
        }
      }
      if (best < 0) continue;  // no survivor has headroom for it

      result.placement[i] = best;
      loads[static_cast<std::size_t>(best)] += size;
      rebuild_bytes[static_cast<std::size_t>(best)] += size;
      budget -= size;
      ++result.objects_recovered;
      result.weight_recovered += weight_of(i);
      // The landed object now attracts its correlated siblings to `best`.
      for (const PairWeight* p : incident[static_cast<std::size_t>(i)]) {
        const ObjectId other = p->i == i ? p->j : p->i;
        affinity[static_cast<std::size_t>(other)]
                [static_cast<std::size_t>(best)] += p->cost();
      }
    }

    // Destinations restore their slices concurrently, each bounded by
    // its own ingest bandwidth (megabits/s = 125 bytes/ms): the rebuild
    // finishes when the most-loaded one does.
    double max_assigned = 0.0;
    for (int k = 0; k < instance.num_nodes(); ++k) {
      if (rebuild_bytes[static_cast<std::size_t>(k)] <= 0.0) continue;
      ++result.rebuild_destinations;
      max_assigned =
          std::max(max_assigned, rebuild_bytes[static_cast<std::size_t>(k)]);
    }
    result.rebuild_makespan_ms = max_assigned / (config_.rebuild_mbps * 125.0);
  }

  // Optional second phase: spend what is left of the budget improving
  // the survivor placement (the greedy landings above restore coverage,
  // not optimality). Dead nodes get zero capacity so the fresh target
  // avoids them; objects still parked on dead nodes are pinned in place
  // (they are unserved either way and must not consume survivor budget).
  if (config_.reoptimize_survivors && budget > 1e-9) {
    // A dead node's capacity is exactly the bytes still parked on it, so
    // the pinned (unrecovered) objects fit and nothing else can land
    // there — keeps the LP feasible while excluding dead nodes.
    std::vector<double> caps(instance.node_capacities());
    std::vector<double> parked(caps.size(), 0.0);
    for (int i = 0; i < instance.num_objects(); ++i)
      if (!alive[static_cast<std::size_t>(result.placement[i])])
        parked[static_cast<std::size_t>(result.placement[i])] +=
            instance.object_size(i);
    for (int k = 0; k < instance.num_nodes(); ++k)
      if (!alive[static_cast<std::size_t>(k)])
        caps[static_cast<std::size_t>(k)] = parked[static_cast<std::size_t>(k)];
    CcaInstance survivor(instance.object_sizes(), std::move(caps),
                         instance.pairs());
    for (int i = 0; i < instance.num_objects(); ++i)
      if (!alive[static_cast<std::size_t>(result.placement[i])])
        survivor.pin(i, result.placement[i]);
    IncrementalConfig inc;
    inc.migration_budget_fraction =
        budget / std::max(instance.total_object_size(), 1e-12);
    inc.rounding = config_.rounding;
    inc.seed = config_.seed;
    // Shared across failure events: a node loss shifts capacities/pins
    // (an rhs perturbation of the same LP shape), so the cached basis is
    // either confirmed outright or repaired by the dual simplex lane —
    // recovery re-solves never pay a phase-1 rebuild for a stale basis.
    inc.warm_cache = &lp_warm_cache_;
    const IncrementalResult rebalanced =
        IncrementalOptimizer(inc).reoptimize(survivor, result.placement);
    result.placement = rebalanced.placement;
  }

  result.migration = migration_between(instance, current, result.placement);
  result.coverage_restored =
      result.weight_lost > 0.0
          ? result.weight_recovered / result.weight_lost
          : 1.0;
  result.cost = instance.communication_cost(result.placement);

  if (common::metrics_enabled()) {
    auto& reg = common::MetricsRegistry::global();
    static common::Counter& plans = reg.counter("core.recovery.plans");
    static common::Counter& lost_count =
        reg.counter("core.recovery.objects_lost");
    static common::Counter& recovered_count =
        reg.counter("core.recovery.objects_recovered");
    static common::Counter& moved_bytes =
        reg.counter("core.recovery.bytes_moved");
    static common::Histogram& restored_pct =
        reg.histogram("core.recovery.coverage_restored_pct");
    plans.add();
    lost_count.add(static_cast<std::int64_t>(result.objects_lost));
    recovered_count.add(static_cast<std::int64_t>(result.objects_recovered));
    moved_bytes.add(static_cast<std::int64_t>(result.migration.bytes_moved));
    restored_pct.observe(
        static_cast<std::uint64_t>(100.0 * result.coverage_restored));
  }
  return result;
}

}  // namespace cca::core
