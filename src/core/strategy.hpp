// Named placement-strategy registry.
//
// Strategies are string-keyed factories that map a configured
// PartialOptimizer to a placement of its scoped instance. The built-in
// strategies of the paper ("random-hash", "greedy", "multilevel", "lprr")
// are registered when the registry is first touched; new strategies
// register at runtime without touching the optimizer, and benches resolve
// `--strategy` flags by name through the same table:
//
//   core::StrategyRegistry::global().add("my-heuristic",
//       [](const core::PartialOptimizer& opt) {
//         return my_heuristic(opt.scoped_instance());
//       });
//   optimizer.run("my-heuristic");
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.hpp"

namespace cca::core {

class PartialOptimizer;

/// Computes a placement of `optimizer.scoped_instance()`. Implementations
/// must be deterministic in the optimizer's config (seed included).
using StrategyFn = std::function<Placement(const PartialOptimizer&)>;

/// Process-wide name -> strategy table. Built-ins are registered in the
/// constructor (not via static initializers, which linkers may drop from
/// static libraries). Thread-safe for lookups after registration;
/// registration itself is expected from startup code.
class StrategyRegistry {
 public:
  /// The shared registry, with built-ins pre-registered (leaked singleton:
  /// valid through static destruction).
  static StrategyRegistry& global();

  /// Registers a strategy. Throws common::Error if the name is taken.
  void add(std::string name, StrategyFn fn);

  /// Looks up a strategy. Throws common::Error listing the registered
  /// names when `name` is unknown.
  const StrategyFn& at(std::string_view name) const;

  bool contains(std::string_view name) const;

  /// Registered names in sorted order.
  std::vector<std::string> names() const;

 private:
  StrategyRegistry();

  struct Impl;
  Impl& impl() const;
};

/// Splits a comma-separated strategy list (e.g. a --strategies flag) and
/// validates every name against the global registry — unknown names throw
/// the registry's listing error. Empty segments are skipped.
std::vector<std::string> parse_strategy_list(std::string_view csv);

}  // namespace cca::core
