#include "core/placements.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "hash/md5.hpp"

namespace cca::core {

ObjectNameFn default_object_names() {
  return [](ObjectId i) { return "obj" + std::to_string(i); };
}

Placement random_hash_placement(const CcaInstance& instance,
                                const ObjectNameFn& name) {
  const auto n = static_cast<std::uint64_t>(instance.num_nodes());
  Placement placement(static_cast<std::size_t>(instance.num_objects()));
  for (int i = 0; i < instance.num_objects(); ++i) {
    if (auto pin = instance.pinned_node(i)) {
      placement[i] = *pin;
    } else {
      placement[i] = static_cast<NodeId>(hash::Md5::digest64(name(i)) % n);
    }
  }
  return placement;
}

Placement greedy_placement(const CcaInstance& instance,
                           const GreedyOptions& options) {
  const int T = instance.num_objects();
  const int N = instance.num_nodes();

  std::vector<double> remaining(instance.node_capacities());
  // Remaining headroom per extra resource dimension (Sec. 3.3).
  std::vector<std::vector<double>> res_remaining;
  for (const Resource& res : instance.resources())
    res_remaining.push_back(res.capacities);
  Placement placement(static_cast<std::size_t>(T), -1);

  auto place = [&](ObjectId i, NodeId k) {
    placement[i] = k;
    remaining[k] -= instance.object_size(i);
    for (std::size_t r = 0; r < res_remaining.size(); ++r)
      res_remaining[r][k] -= instance.resources()[r].demands[i];
  };

  for (int i = 0; i < T; ++i)
    if (auto pin = instance.pinned_node(i)) place(i, *pin);

  // True when node k can absorb the given objects across all dimensions.
  auto fits = [&](NodeId k, std::initializer_list<ObjectId> objs) {
    double need = 0.0;
    for (ObjectId i : objs) need += instance.object_size(i);
    if (remaining[k] < need) return false;
    for (std::size_t r = 0; r < res_remaining.size(); ++r) {
      double rneed = 0.0;
      for (ObjectId i : objs) rneed += instance.resources()[r].demands[i];
      if (res_remaining[r][k] < rneed) return false;
    }
    return true;
  };

  // Emptiest (by storage) node that fits the objects, or -1.
  auto roomiest_node = [&](std::initializer_list<ObjectId> objs) -> NodeId {
    NodeId best = -1;
    for (int k = 0; k < N; ++k)
      if (fits(k, objs) && (best < 0 || remaining[k] > remaining[best]))
        best = k;
    return best;
  };

  // Pair pass: descending correlation (or cost), paper Sec. 4.1.
  std::vector<const PairWeight*> order;
  order.reserve(instance.pairs().size());
  for (const PairWeight& p : instance.pairs()) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [&](const PairWeight* a, const PairWeight* b) {
              const double ka = options.order_by_cost ? a->cost() : a->r;
              const double kb = options.order_by_cost ? b->cost() : b->r;
              if (ka != kb) return ka > kb;
              if (a->i != b->i) return a->i < b->i;
              return a->j < b->j;
            });

  for (const PairWeight* p : order) {
    const bool i_placed = placement[p->i] >= 0;
    const bool j_placed = placement[p->j] >= 0;
    if (i_placed && j_placed) continue;
    if (!i_placed && !j_placed) {
      const NodeId k = roomiest_node({p->i, p->j});
      if (k >= 0) {
        place(p->i, k);
        place(p->j, k);
      }
      continue;
    }
    const ObjectId placed = i_placed ? p->i : p->j;
    const ObjectId other = i_placed ? p->j : p->i;
    const NodeId k = placement[placed];
    if (fits(k, {other})) place(other, k);
    // else: leave `other` for a later pair or the leftover pass — placing
    // it elsewhere now would waste its strongest correlation.
  }

  // Leftover pass: biggest objects first into the emptiest fitting node.
  std::vector<ObjectId> leftovers;
  for (int i = 0; i < T; ++i)
    if (placement[i] < 0) leftovers.push_back(i);
  std::sort(leftovers.begin(), leftovers.end(), [&](ObjectId a, ObjectId b) {
    const double sa = instance.object_size(a), sb = instance.object_size(b);
    return sa != sb ? sa > sb : a < b;
  });
  for (ObjectId i : leftovers) {
    NodeId k = roomiest_node({i});
    if (k < 0) {
      // Nothing fits: fall back to the least-overloaded node so the
      // function still returns a complete placement (callers can detect
      // the capacity violation through evaluate_placement).
      k = 0;
      for (int n = 1; n < N; ++n)
        if (remaining[n] > remaining[k]) k = n;
    }
    place(i, k);
  }
  return placement;
}

namespace {

void brute_force_recurse(const CcaInstance& instance, Placement& current,
                         std::vector<double>& remaining,
                         std::vector<std::vector<double>>& res_remaining,
                         int next, std::optional<BruteForceResult>& best) {
  const int T = instance.num_objects();
  if (next == T) {
    const double cost = instance.communication_cost(current);
    if (!best || cost < best->cost) best = BruteForceResult{current, cost};
    return;
  }
  const double size = instance.object_size(next);
  for (int k = 0; k < instance.num_nodes(); ++k) {
    if (auto pin = instance.pinned_node(next); pin && *pin != k) continue;
    if (remaining[k] + 1e-12 < size) continue;
    bool res_ok = true;
    for (std::size_t r = 0; r < res_remaining.size(); ++r) {
      if (res_remaining[r][k] + 1e-12 <
          instance.resources()[r].demands[next]) {
        res_ok = false;
        break;
      }
    }
    if (!res_ok) continue;
    remaining[k] -= size;
    for (std::size_t r = 0; r < res_remaining.size(); ++r)
      res_remaining[r][k] -= instance.resources()[r].demands[next];
    current[next] = k;
    brute_force_recurse(instance, current, remaining, res_remaining, next + 1,
                        best);
    remaining[k] += size;
    for (std::size_t r = 0; r < res_remaining.size(); ++r)
      res_remaining[r][k] += instance.resources()[r].demands[next];
  }
}

}  // namespace

std::optional<BruteForceResult> brute_force_optimal(
    const CcaInstance& instance) {
  CCA_CHECK_MSG(instance.num_objects() <= 16,
                "brute force limited to 16 objects, got "
                    << instance.num_objects());
  std::optional<BruteForceResult> best;
  Placement current(static_cast<std::size_t>(instance.num_objects()), -1);
  std::vector<double> remaining(instance.node_capacities());
  std::vector<std::vector<double>> res_remaining;
  for (const Resource& res : instance.resources())
    res_remaining.push_back(res.capacities);
  brute_force_recurse(instance, current, remaining, res_remaining, 0, best);
  return best;
}

PlacementReport evaluate_placement(const CcaInstance& instance,
                                   const Placement& placement) {
  PlacementReport report;
  report.cost = instance.communication_cost(placement);
  const double total = instance.total_pair_cost();
  report.normalized_cost = total > 0.0 ? report.cost / total : 0.0;
  report.max_load_factor = instance.max_load_factor(placement);
  report.feasible = instance.is_feasible(placement);
  return report;
}

}  // namespace cca::core
