#include "core/instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.hpp"

namespace cca::core {

CcaInstance::CcaInstance(std::vector<double> object_sizes,
                         std::vector<double> node_capacities,
                         std::vector<PairWeight> pairs)
    : sizes_(std::move(object_sizes)),
      capacities_(std::move(node_capacities)),
      pairs_(std::move(pairs)) {
  CCA_CHECK_MSG(!sizes_.empty(), "instance needs at least one object");
  CCA_CHECK_MSG(!capacities_.empty(), "instance needs at least one node");
  for (double s : sizes_) {
    CCA_CHECK_MSG(s >= 0.0 && std::isfinite(s), "bad object size " << s);
    total_size_ += s;
  }
  for (double c : capacities_)
    CCA_CHECK_MSG(c >= 0.0 && std::isfinite(c), "bad node capacity " << c);
  for (PairWeight& p : pairs_) {
    CCA_CHECK_MSG(p.i >= 0 && p.i < num_objects(), "pair object " << p.i);
    CCA_CHECK_MSG(p.j >= 0 && p.j < num_objects(), "pair object " << p.j);
    CCA_CHECK_MSG(p.i != p.j, "self-pair on object " << p.i);
    CCA_CHECK_MSG(p.r >= 0.0 && p.r <= 1.0, "correlation r=" << p.r);
    CCA_CHECK_MSG(p.w >= 0.0 && std::isfinite(p.w), "pair cost w=" << p.w);
    if (p.i > p.j) std::swap(p.i, p.j);
  }
  pins_.assign(sizes_.size(), std::nullopt);
}

void CcaInstance::pin(ObjectId i, NodeId k) {
  CCA_CHECK(i >= 0 && i < num_objects());
  CCA_CHECK(k >= 0 && k < num_nodes());
  if (!pins_[i].has_value()) ++num_pins_;
  pins_[i] = k;
}

void CcaInstance::add_resource(Resource resource) {
  CCA_CHECK_MSG(resource.demands.size() == sizes_.size(),
                "resource '" << resource.name << "' demand count "
                             << resource.demands.size() << " != object count "
                             << sizes_.size());
  CCA_CHECK_MSG(resource.capacities.size() == capacities_.size(),
                "resource '" << resource.name << "' capacity count "
                             << resource.capacities.size()
                             << " != node count " << capacities_.size());
  for (double d : resource.demands)
    CCA_CHECK_MSG(d >= 0.0 && std::isfinite(d),
                  "bad demand in resource '" << resource.name << "'");
  for (double c : resource.capacities)
    CCA_CHECK_MSG(c >= 0.0 && std::isfinite(c),
                  "bad capacity in resource '" << resource.name << "'");
  resources_.push_back(std::move(resource));
}

void CcaInstance::set_hyperedges(std::vector<Hyperedge> edges) {
  // Canonicalize: sorted distinct pins, >= 2 of them, merged duplicates.
  std::map<std::vector<ObjectId>, double> merged;
  for (Hyperedge& e : edges) {
    CCA_CHECK_MSG(e.weight >= 0.0 && std::isfinite(e.weight),
                  "bad hyperedge weight " << e.weight);
    std::sort(e.pins.begin(), e.pins.end());
    e.pins.erase(std::unique(e.pins.begin(), e.pins.end()), e.pins.end());
    for (ObjectId pin : e.pins)
      CCA_CHECK_MSG(pin >= 0 && pin < num_objects(),
                    "hyperedge pin " << pin << " outside [0, "
                                     << num_objects() << ")");
    if (e.pins.size() < 2 || e.weight <= 0.0) continue;
    merged[std::move(e.pins)] += e.weight;
  }
  hyperedges_.clear();
  hyperedges_.reserve(merged.size());
  for (auto& [pins, weight] : merged)
    hyperedges_.push_back(Hyperedge{pins, weight});
}

double CcaInstance::connectivity_cost(const Placement& placement) const {
  CCA_CHECK(static_cast<int>(placement.size()) == num_objects());
  double cost = 0.0;
  std::vector<NodeId> nodes;
  for (const Hyperedge& e : hyperedges_) {
    nodes.clear();
    for (ObjectId pin : e.pins) nodes.push_back(placement[pin]);
    std::sort(nodes.begin(), nodes.end());
    const auto lambda =
        std::unique(nodes.begin(), nodes.end()) - nodes.begin();
    cost += e.weight * static_cast<double>(lambda - 1);
  }
  return cost;
}

double CcaInstance::total_connectivity_cost() const {
  double cost = 0.0;
  for (const Hyperedge& e : hyperedges_)
    cost += e.weight * static_cast<double>(e.degree() - 1);
  return cost;
}

std::vector<double> CcaInstance::resource_loads(const Placement& placement,
                                                std::size_t r) const {
  CCA_CHECK(static_cast<int>(placement.size()) == num_objects());
  CCA_CHECK_MSG(r < resources_.size(), "unknown resource index " << r);
  std::vector<double> loads(capacities_.size(), 0.0);
  for (int i = 0; i < num_objects(); ++i)
    loads[placement[i]] += resources_[r].demands[i];
  return loads;
}

double CcaInstance::communication_cost(const Placement& placement) const {
  CCA_CHECK(static_cast<int>(placement.size()) == num_objects());
  double cost = 0.0;
  for (const PairWeight& p : pairs_)
    if (placement[p.i] != placement[p.j]) cost += p.cost();
  return cost;
}

double CcaInstance::total_pair_cost() const {
  double cost = 0.0;
  for (const PairWeight& p : pairs_) cost += p.cost();
  return cost;
}

std::vector<double> CcaInstance::node_loads(const Placement& placement) const {
  CCA_CHECK(static_cast<int>(placement.size()) == num_objects());
  std::vector<double> loads(capacities_.size(), 0.0);
  for (int i = 0; i < num_objects(); ++i) {
    CCA_CHECK_MSG(placement[i] >= 0 && placement[i] < num_nodes(),
                  "object " << i << " placed on unknown node "
                            << placement[i]);
    loads[placement[i]] += sizes_[i];
  }
  return loads;
}

double CcaInstance::max_load_factor(const Placement& placement) const {
  const std::vector<double> loads = node_loads(placement);
  double factor = 0.0;
  for (int k = 0; k < num_nodes(); ++k) {
    if (capacities_[k] > 0.0) {
      factor = std::max(factor, loads[k] / capacities_[k]);
    } else if (loads[k] > 0.0) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return factor;
}

bool CcaInstance::is_feasible(const Placement& placement) const {
  for (int i = 0; i < num_objects(); ++i)
    if (pins_[i].has_value() && placement[i] != *pins_[i]) return false;
  const std::vector<double> loads = node_loads(placement);
  for (int k = 0; k < num_nodes(); ++k) {
    // Tiny epsilon absorbs accumulated floating point noise in sizes.
    if (loads[k] > capacities_[k] * (1.0 + 1e-12) + 1e-9) return false;
  }
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    const std::vector<double> rloads = resource_loads(placement, r);
    for (int k = 0; k < num_nodes(); ++k) {
      if (rloads[k] > resources_[r].capacities[k] * (1.0 + 1e-12) + 1e-9)
        return false;
    }
  }
  return true;
}

double FractionalPlacement::lp_objective(const CcaInstance& instance) const {
  CCA_CHECK(instance.num_objects() == num_objects_);
  CCA_CHECK(instance.num_nodes() == num_nodes_);
  double obj = 0.0;
  for (const PairWeight& p : instance.pairs()) {
    double sep = 0.0;
    for (int k = 0; k < num_nodes_; ++k)
      sep += std::abs(value(p.i, k) - value(p.j, k));
    obj += p.cost() * 0.5 * sep;
  }
  return obj;
}

double FractionalPlacement::max_row_violation() const {
  double viol = 0.0;
  for (int i = 0; i < num_objects_; ++i) {
    double sum = 0.0;
    for (int k = 0; k < num_nodes_; ++k) {
      viol = std::max(viol, -value(i, k));
      sum += value(i, k);
    }
    viol = std::max(viol, std::abs(sum - 1.0));
  }
  return viol;
}

std::vector<double> FractionalPlacement::expected_loads(
    const CcaInstance& instance) const {
  CCA_CHECK(instance.num_objects() == num_objects_);
  std::vector<double> loads(static_cast<std::size_t>(num_nodes_), 0.0);
  for (int i = 0; i < num_objects_; ++i)
    for (int k = 0; k < num_nodes_; ++k)
      loads[k] += instance.object_size(i) * value(i, k);
  return loads;
}

}  // namespace cca::core
