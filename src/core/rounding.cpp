#include "core/rounding.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace cca::core {

Placement round_once(const FractionalPlacement& x, common::Rng& rng) {
  const int T = x.num_objects();
  const int N = x.num_nodes();
  CCA_CHECK_MSG(x.max_row_violation() < 1e-6,
                "fractional placement is not row-stochastic (violation "
                    << x.max_row_violation() << ")");

  Placement placement(static_cast<std::size_t>(T), -1);
  std::vector<int> unplaced(static_cast<std::size_t>(T));
  for (int i = 0; i < T; ++i) unplaced[i] = i;

  // Each round places a given object with probability 1/N (sum of x_ik
  // over the random k), so ~N * ln T rounds suffice on average. The guard
  // bound is far above that; hitting it means the input was malformed in a
  // way the row check did not catch, so we fail loudly rather than loop.
  const long max_rounds =
      2000L * N * (static_cast<long>(std::log2(T + 1)) + 8);
  long rounds = 0;
  while (!unplaced.empty()) {
    CCA_CHECK_MSG(++rounds <= max_rounds,
                  "rounding failed to converge after " << rounds << " rounds");
    const double r = rng.next_double();
    const int k = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(N)));
    std::size_t kept = 0;
    for (std::size_t t = 0; t < unplaced.size(); ++t) {
      const int i = unplaced[t];
      if (r <= x.value(i, k)) {
        placement[i] = k;
      } else {
        unplaced[kept++] = i;
      }
    }
    unplaced.resize(kept);
  }
  return placement;
}

RoundingResult round_best_of(const FractionalPlacement& x,
                             const CcaInstance& instance,
                             const RoundingPolicy& policy, common::Rng& rng) {
  CCA_CHECK_MSG(policy.trials >= 1, "need at least one rounding trial");
  RoundingResult best;
  for (int t = 0; t < policy.trials; ++t) {
    Placement candidate = round_once(x, rng);
    // Rounding cannot see pins (they are encoded in x as 0/1 rows), but
    // verify the contract held.
    const double cost = instance.communication_cost(candidate);
    const double load = instance.max_load_factor(candidate);
    const bool feasible = instance.is_feasible(candidate);

    bool better;
    if (best.placement.empty()) {
      better = true;
    } else if (policy.prefer_feasible && feasible != best.feasible) {
      better = feasible;
    } else if (policy.prefer_feasible && !feasible && !best.feasible &&
               load != best.max_load_factor) {
      // No feasible draw yet: drive the overload down first; a lower cost
      // on a badly overloaded node is not a better placement.
      better = load < best.max_load_factor;
    } else if (cost != best.cost) {
      better = cost < best.cost;
    } else {
      better = load < best.max_load_factor;
    }
    if (better) {
      best.placement = std::move(candidate);
      best.cost = cost;
      best.max_load_factor = load;
      best.feasible = feasible;
    }
  }
  best.trials = policy.trials;
  return best;
}

}  // namespace cca::core
