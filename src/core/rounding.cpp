#include "core/rounding.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"

namespace cca::core {

Placement round_once(const FractionalPlacement& x, common::Rng& rng) {
  const int T = x.num_objects();
  const int N = x.num_nodes();
  CCA_CHECK_MSG(x.max_row_violation() < 1e-6,
                "fractional placement is not row-stochastic (violation "
                    << x.max_row_violation() << ")");

  Placement placement(static_cast<std::size_t>(T), -1);
  std::vector<int> unplaced(static_cast<std::size_t>(T));
  for (int i = 0; i < T; ++i) unplaced[i] = i;

  // Each round places a given object with probability 1/N (sum of x_ik
  // over the random k), so ~N * ln T rounds suffice on average. The guard
  // bound is far above that; hitting it means the input was malformed in a
  // way the row check did not catch, so we fail loudly rather than loop.
  const long max_rounds =
      2000L * N * (static_cast<long>(std::log2(T + 1)) + 8);
  long rounds = 0;
  while (!unplaced.empty()) {
    CCA_CHECK_MSG(++rounds <= max_rounds,
                  "rounding failed to converge after " << rounds << " rounds");
    const double r = rng.next_double();
    const int k = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(N)));
    std::size_t kept = 0;
    for (std::size_t t = 0; t < unplaced.size(); ++t) {
      const int i = unplaced[t];
      if (r <= x.value(i, k)) {
        placement[i] = k;
      } else {
        unplaced[kept++] = i;
      }
    }
    unplaced.resize(kept);
  }
  // One record per call (`rounds` accumulated locally above); sharded, so
  // safe from the parallel trial loop in round_best_of.
  if (common::metrics_enabled()) {
    static common::Histogram& rounds_hist =
        common::MetricsRegistry::global().histogram("core.rounding.rounds");
    rounds_hist.observe(static_cast<std::uint64_t>(rounds));
  }
  return placement;
}

RoundingResult round_best_of(const FractionalPlacement& x,
                             const CcaInstance& instance,
                             const RoundingPolicy& policy, common::Rng& rng) {
  CCA_CHECK_MSG(policy.trials >= 1, "need at least one rounding trial");

  // The K trials are independent, so they run concurrently. Determinism
  // contract: one base value is drawn from the caller's stream (advancing
  // it by exactly one step regardless of K or thread count), and trial t
  // uses its own Rng seeded with the t-th output of a SplitMix64 sequence
  // started at that base — bit-identical for every thread count.
  const std::uint64_t base = rng();
  struct Trial {
    Placement placement;
    double cost = 0.0;
    double load = 0.0;
    bool feasible = false;
  };
  const auto trials = static_cast<std::size_t>(policy.trials);
  std::vector<Trial> results(trials);
  common::parallel_for(0, trials, 1, [&](std::size_t t) {
    common::SplitMix64 derive(base +
                              0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(t));
    common::Rng trial_rng(derive());
    Trial& out = results[t];
    out.placement = round_once(x, trial_rng);
    // Rounding cannot see pins (they are encoded in x as 0/1 rows), but
    // verify the contract held.
    out.cost = instance.communication_cost(out.placement);
    out.load = instance.max_load_factor(out.placement);
    out.feasible = instance.is_feasible(out.placement);
  });

  // Sequential reduction in trial order with strict "better" comparisons:
  // ties keep the lowest trial index, matching the order of evaluation a
  // sequential loop would have used.
  RoundingResult best;
  std::size_t winning_trial = 0;
  std::int64_t improvements = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    Trial& candidate = results[t];
    bool better;
    if (best.placement.empty()) {
      better = true;
    } else if (policy.prefer_feasible && candidate.feasible != best.feasible) {
      better = candidate.feasible;
    } else if (policy.prefer_feasible && !candidate.feasible &&
               !best.feasible && candidate.load != best.max_load_factor) {
      // No feasible draw yet: drive the overload down first; a lower cost
      // on a badly overloaded node is not a better placement.
      better = candidate.load < best.max_load_factor;
    } else if (candidate.cost != best.cost) {
      better = candidate.cost < best.cost;
    } else {
      better = candidate.load < best.max_load_factor;
    }
    if (better) {
      best.placement = std::move(candidate.placement);
      best.cost = candidate.cost;
      best.max_load_factor = candidate.load;
      best.feasible = candidate.feasible;
      winning_trial = t;
      if (t > 0) ++improvements;
    }
  }
  best.trials = policy.trials;

  // Best-of-K accounting: trials attempted/feasible, how often a later
  // trial beat the incumbent, and where the winner sat in the sequence
  // (a flat winning-trial histogram means K is still paying for itself).
  if (common::metrics_enabled()) {
    auto& reg = common::MetricsRegistry::global();
    static common::Counter& calls = reg.counter("core.rounding.calls");
    static common::Counter& attempted = reg.counter("core.rounding.trials");
    static common::Counter& feasible =
        reg.counter("core.rounding.trials.feasible");
    static common::Counter& improved =
        reg.counter("core.rounding.improvements");
    static common::Histogram& winner =
        reg.histogram("core.rounding.winning_trial");
    calls.add();
    attempted.add(static_cast<std::int64_t>(trials));
    std::int64_t feasible_count = 0;
    for (const Trial& t : results) feasible_count += t.feasible ? 1 : 0;
    feasible.add(feasible_count);
    improved.add(improvements);
    winner.observe(winning_trial);
  }
  return best;
}

}  // namespace cca::core
