#include "core/correlation.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.hpp"

namespace cca::core {

trace::PairMode pair_mode_of(OperationModel model) {
  return model == OperationModel::kSmallestPair
             ? trace::PairMode::kSmallestPair
             : trace::PairMode::kAllPairs;
}

bool MinerOptions::parse_kind(const std::string& name, Kind* out) {
  if (name == "exact") {
    *out = Kind::kExact;
    return true;
  }
  if (name == "sketch") {
    *out = Kind::kSketch;
    return true;
  }
  return false;
}

std::vector<KeywordPairWeight> build_pair_weights(
    const trace::QueryTrace& trace,
    const std::vector<std::uint64_t>& index_sizes, OperationModel model) {
  CCA_CHECK_MSG(index_sizes.size() >= trace.vocabulary_size(),
                "index_sizes does not cover the vocabulary");
  const trace::PairCounter counter =
      model == OperationModel::kSmallestPair
          ? trace::PairCounter::count_smallest_pair(trace, index_sizes)
          : trace::PairCounter::count_all_pairs(trace);

  std::vector<KeywordPairWeight> out;
  out.reserve(counter.distinct_pairs());
  for (const trace::PairCount& pc : counter.sorted_pairs()) {
    KeywordPairWeight kpw;
    kpw.a = pc.pair.first;
    kpw.b = pc.pair.second;
    kpw.r = pc.probability;
    kpw.w = static_cast<double>(
        std::min(index_sizes[pc.pair.first], index_sizes[pc.pair.second]));
    out.push_back(kpw);
  }
  return out;
}

std::vector<KeywordPairWeight> build_pair_weights(
    const trace::StreamMiner& miner,
    const std::vector<std::uint64_t>& index_sizes) {
  std::vector<KeywordPairWeight> out;
  const auto candidates = miner.top_pairs(miner.config().top_pairs);
  out.reserve(candidates.size());
  for (const trace::PairCount& pc : candidates) {
    CCA_CHECK_MSG(pc.pair.second < index_sizes.size(),
                  "index_sizes does not cover mined keyword "
                      << pc.pair.second);
    KeywordPairWeight kpw;
    kpw.a = pc.pair.first;
    kpw.b = pc.pair.second;
    kpw.r = pc.probability;
    kpw.w = static_cast<double>(
        std::min(index_sizes[pc.pair.first], index_sizes[pc.pair.second]));
    out.push_back(kpw);
  }
  return out;
}

std::vector<KeywordPairWeight> mine_pair_weights(
    const trace::QueryTrace& trace,
    const std::vector<std::uint64_t>& index_sizes, OperationModel model,
    const MinerOptions& miner) {
  if (miner.kind == MinerOptions::Kind::kExact)
    return build_pair_weights(trace, index_sizes, model);
  trace::StreamMiner stream(miner.sketch);
  stream.observe_trace(trace, pair_mode_of(model), &index_sizes);
  return build_pair_weights(stream, index_sizes);
}

std::vector<KeywordHyperedge> build_hyperedges(
    const trace::QueryTrace& trace) {
  // Queries arrive with sorted distinct keywords (QueryTrace::add_query
  // canonicalizes), so the keyword vector itself is the aggregation key.
  // std::map keeps the output deterministically sorted by pin set.
  std::map<std::vector<trace::KeywordId>, std::size_t> counts;
  for (const trace::Query& q : trace.queries()) {
    if (q.size() < 2) continue;
    ++counts[q.keywords];
  }
  std::vector<KeywordHyperedge> out;
  out.reserve(counts.size());
  const double rate_unit =
      trace.empty() ? 0.0 : 1.0 / static_cast<double>(trace.size());
  for (auto& [pins, count] : counts)
    out.push_back(
        KeywordHyperedge{pins, static_cast<double>(count) * rate_unit});
  return out;
}

std::vector<trace::KeywordId> importance_ranking(
    const std::vector<KeywordPairWeight>& pairs,
    const std::vector<std::uint64_t>& index_sizes) {
  // Pairs in descending communication cost r*w.
  std::vector<const KeywordPairWeight*> order;
  order.reserve(pairs.size());
  for (const KeywordPairWeight& p : pairs) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [](const KeywordPairWeight* x, const KeywordPairWeight* y) {
              if (x->cost() != y->cost()) return x->cost() > y->cost();
              if (x->a != y->a) return x->a < y->a;
              return x->b < y->b;
            });

  const std::size_t vocab = index_sizes.size();
  std::vector<bool> ranked(vocab, false);
  std::vector<trace::KeywordId> ranking;
  ranking.reserve(vocab);
  for (const KeywordPairWeight* p : order) {
    for (trace::KeywordId k : {p->a, p->b}) {
      if (!ranked[k]) {
        ranked[k] = true;
        ranking.push_back(k);
      }
    }
  }

  // Never-communicating keywords last, largest index first (they still
  // matter for the capacity side of the placement).
  std::vector<trace::KeywordId> tail;
  for (std::size_t k = 0; k < vocab; ++k)
    if (!ranked[k]) tail.push_back(static_cast<trace::KeywordId>(k));
  std::sort(tail.begin(), tail.end(),
            [&](trace::KeywordId a, trace::KeywordId b) {
              if (index_sizes[a] != index_sizes[b])
                return index_sizes[a] > index_sizes[b];
              return a < b;
            });
  ranking.insert(ranking.end(), tail.begin(), tail.end());
  return ranking;
}

std::vector<DominancePoint> dominance_curve(
    const std::vector<trace::KeywordId>& ranking,
    const std::vector<KeywordPairWeight>& pairs,
    const std::vector<std::uint64_t>& index_sizes,
    std::size_t sample_points) {
  CCA_CHECK(sample_points >= 1);
  const std::size_t vocab = ranking.size();

  std::vector<std::size_t> rank_of(index_sizes.size(), vocab);
  for (std::size_t pos = 0; pos < ranking.size(); ++pos)
    rank_of[ranking[pos]] = pos;

  // A pair is covered once both endpoints are within the prefix, i.e. at
  // prefix length max(rank_a, rank_b) + 1.
  std::vector<double> cost_at_rank(vocab + 1, 0.0);
  double total_cost = 0.0;
  for (const KeywordPairWeight& p : pairs) {
    const std::size_t need = std::max(rank_of[p.a], rank_of[p.b]) + 1;
    cost_at_rank[need] += p.cost();
    total_cost += p.cost();
  }
  std::vector<double> size_at_rank(vocab + 1, 0.0);
  double total_size = 0.0;
  for (std::size_t pos = 0; pos < ranking.size(); ++pos) {
    size_at_rank[pos + 1] = static_cast<double>(index_sizes[ranking[pos]]);
    total_size += size_at_rank[pos + 1];
  }

  std::vector<DominancePoint> curve;
  curve.reserve(sample_points + 1);
  double cum_cost = 0.0, cum_size = 0.0;
  const std::size_t step = std::max<std::size_t>(1, vocab / sample_points);
  std::size_t next_sample = step;
  for (std::size_t rank = 1; rank <= vocab; ++rank) {
    cum_cost += cost_at_rank[rank];
    cum_size += size_at_rank[rank];
    if (rank == next_sample || rank == vocab) {
      DominancePoint pt;
      pt.rank = rank;
      pt.cumulative_size_fraction = total_size > 0 ? cum_size / total_size : 0;
      pt.cumulative_cost_fraction = total_cost > 0 ? cum_cost / total_cost : 0;
      curve.push_back(pt);
      next_sample += step;
    }
  }
  return curve;
}

}  // namespace cca::core
