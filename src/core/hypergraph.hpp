// Multilevel hypergraph partitioning — whole queries, not just pairs.
//
// The paper collapses every k-keyword query to pairwise correlations via
// the two-smallest-objects adjustment (core/correlation.hpp), so every
// pairwise strategy — the LP included — optimizes an approximation that
// degrades as mean query length grows past the trace's ~2.54. A query is
// really a *hyperedge*: the set of objects one operation touches. This
// module partitions that hypergraph directly, following the
// partitioning-for-placement line of Golab et al. (Distributed Data
// Placement via Graph Partitioning) and the METIS/hMETIS multilevel
// scheme:
//
//   1. COARSEN: heavy-edge matching on pin co-membership (score of a
//      candidate pair = sum over shared nets of weight / (|net| - 1)),
//      contracting matched vertices and then contracting/deduplicating
//      nets per level (pins remapped, single-pin nets dropped, identical
//      pin sets merged with weights summed);
//   2. PLACE: greedy capacity-respecting placement of the coarsest
//      hypergraph, big vertices first, each to the node already holding
//      the most incident net weight among nodes with room;
//   3. UNCOARSEN + REFINE: project each level back and improve with
//      FM-style single-vertex moves under capacity, maximizing the drop
//      in the rate-weighted connectivity-minus-one objective
//
//          sum_e weight(e) * (lambda(e) - 1),
//
//      lambda(e) = number of distinct nodes hosting e's pins, with ties
//      broken by clique-expansion affinity (zero-gain moves still drift
//      pins toward co-members, letting a later sweep collapse the net).
//      For 2-pin nets lambda - 1 is the cut indicator, so on a pairwise
//      instance this degenerates to a weighted graph partitioner.
//
// Pins and per-node capacities are honoured exactly like
// multilevel_placement; when a node cannot be drained below capacity the
// overflow spills deterministically and is surfaced through the
// core.hypergraph.capacity_violations metric.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "trace/trace.hpp"

namespace cca::core {

struct HypergraphOptions {
  /// Stop coarsening once this few vertices remain (or matching stalls).
  int coarsen_to = 64;
  /// Refinement sweeps per uncoarsening level. Plateau (zero-lambda-gain)
  /// moves drift pins toward co-members, so later sweeps can collapse
  /// nets the first sweep could not.
  int refinement_passes = 6;
  /// Independent V-cycles per run; the one with the best exact
  /// lambda-minus-one cost (feasible first) wins. Heavy-edge matching is
  /// greedy and seed-sensitive, so best-of-N is markedly more robust
  /// than a single cycle.
  int restarts = 4;
  /// Seed for matching and tie-breaking order (routed through the
  /// "core.hypergraph" named stream — see common/rng.hpp).
  std::uint64_t seed = 1;
};

/// Partitions `instance`'s objects over its nodes, minimizing the
/// rate-weighted lambda-minus-one objective over
/// `instance.hyperedges()`. When the instance carries no hyperedges the
/// pairwise view is lifted instead (each pair becomes a 2-pin net of
/// weight r*w), making the result a multilevel graph partitioner on the
/// paper's objective. Honours pins; strives for capacity feasibility and
/// always returns a complete placement.
Placement hypergraph_placement(const CcaInstance& instance,
                               const HypergraphOptions& options = {});

/// Rate-weighted lambda-minus-one cost of a full-vocabulary placement
/// against a query trace: mean over queries of (distinct nodes touched
/// by the query's keywords - 1). The end-to-end quality metric of the
/// strategy frontier bench — computable for ANY strategy's plan, so
/// pairwise and hypergraph placements are comparable on the true
/// whole-query objective.
double trace_lambda_cost(const trace::QueryTrace& trace,
                         const std::vector<NodeId>& keyword_to_node);

}  // namespace cca::core
