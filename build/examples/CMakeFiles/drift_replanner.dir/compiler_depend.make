# Empty compiler generated dependencies file for drift_replanner.
# This may be replaced when dependencies are built.
