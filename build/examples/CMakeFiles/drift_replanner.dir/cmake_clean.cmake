file(REMOVE_RECURSE
  "CMakeFiles/drift_replanner.dir/drift_replanner.cpp.o"
  "CMakeFiles/drift_replanner.dir/drift_replanner.cpp.o.d"
  "drift_replanner"
  "drift_replanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_replanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
