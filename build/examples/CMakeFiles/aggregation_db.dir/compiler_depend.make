# Empty compiler generated dependencies file for aggregation_db.
# This may be replaced when dependencies are built.
