file(REMOVE_RECURSE
  "CMakeFiles/aggregation_db.dir/aggregation_db.cpp.o"
  "CMakeFiles/aggregation_db.dir/aggregation_db.cpp.o.d"
  "aggregation_db"
  "aggregation_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregation_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
