# Empty compiler generated dependencies file for bench_fig7_system_size.
# This may be replaced when dependencies are built.
