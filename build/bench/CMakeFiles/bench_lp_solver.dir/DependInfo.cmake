
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_lp_solver.cpp" "bench/CMakeFiles/bench_lp_solver.dir/bench_lp_solver.cpp.o" "gcc" "bench/CMakeFiles/bench_lp_solver.dir/bench_lp_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cca_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/cca_search.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cca_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cca_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
