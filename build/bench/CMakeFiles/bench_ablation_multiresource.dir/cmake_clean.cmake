file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiresource.dir/bench_ablation_multiresource.cpp.o"
  "CMakeFiles/bench_ablation_multiresource.dir/bench_ablation_multiresource.cpp.o.d"
  "bench_ablation_multiresource"
  "bench_ablation_multiresource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiresource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
