# Empty dependencies file for bench_fig6_scope_sweep.
# This may be replaced when dependencies are built.
