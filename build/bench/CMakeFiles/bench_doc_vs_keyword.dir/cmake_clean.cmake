file(REMOVE_RECURSE
  "CMakeFiles/bench_doc_vs_keyword.dir/bench_doc_vs_keyword.cpp.o"
  "CMakeFiles/bench_doc_vs_keyword.dir/bench_doc_vs_keyword.cpp.o.d"
  "bench_doc_vs_keyword"
  "bench_doc_vs_keyword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_doc_vs_keyword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
