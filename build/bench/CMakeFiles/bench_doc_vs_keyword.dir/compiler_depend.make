# Empty compiler generated dependencies file for bench_doc_vs_keyword.
# This may be replaced when dependencies are built.
