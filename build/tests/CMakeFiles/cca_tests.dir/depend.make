# Empty dependencies file for cca_tests.
# This may be replaced when dependencies are built.
