
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bloom.cpp" "tests/CMakeFiles/cca_tests.dir/test_bloom.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_bloom.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/cca_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_component_solver.cpp" "tests/CMakeFiles/cca_tests.dir/test_component_solver.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_component_solver.cpp.o.d"
  "/root/repo/tests/test_compression.cpp" "tests/CMakeFiles/cca_tests.dir/test_compression.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_compression.cpp.o.d"
  "/root/repo/tests/test_core_instance.cpp" "tests/CMakeFiles/cca_tests.dir/test_core_instance.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_core_instance.cpp.o.d"
  "/root/repo/tests/test_correlation.cpp" "tests/CMakeFiles/cca_tests.dir/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_correlation.cpp.o.d"
  "/root/repo/tests/test_dense_simplex.cpp" "tests/CMakeFiles/cca_tests.dir/test_dense_simplex.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_dense_simplex.cpp.o.d"
  "/root/repo/tests/test_doc_partition.cpp" "tests/CMakeFiles/cca_tests.dir/test_doc_partition.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_doc_partition.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/cca_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_event_sim.cpp" "tests/CMakeFiles/cca_tests.dir/test_event_sim.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_event_sim.cpp.o.d"
  "/root/repo/tests/test_groups.cpp" "tests/CMakeFiles/cca_tests.dir/test_groups.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_groups.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/cca_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/cca_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_lookup_table.cpp" "tests/CMakeFiles/cca_tests.dir/test_lookup_table.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_lookup_table.cpp.o.d"
  "/root/repo/tests/test_lp_formulation.cpp" "tests/CMakeFiles/cca_tests.dir/test_lp_formulation.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_lp_formulation.cpp.o.d"
  "/root/repo/tests/test_lp_model.cpp" "tests/CMakeFiles/cca_tests.dir/test_lp_model.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_lp_model.cpp.o.d"
  "/root/repo/tests/test_md5.cpp" "tests/CMakeFiles/cca_tests.dir/test_md5.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_md5.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/cca_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_multilevel.cpp" "tests/CMakeFiles/cca_tests.dir/test_multilevel.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_multilevel.cpp.o.d"
  "/root/repo/tests/test_multiresource.cpp" "tests/CMakeFiles/cca_tests.dir/test_multiresource.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_multiresource.cpp.o.d"
  "/root/repo/tests/test_partial_optimizer.cpp" "tests/CMakeFiles/cca_tests.dir/test_partial_optimizer.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_partial_optimizer.cpp.o.d"
  "/root/repo/tests/test_pipeline_properties.cpp" "tests/CMakeFiles/cca_tests.dir/test_pipeline_properties.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_pipeline_properties.cpp.o.d"
  "/root/repo/tests/test_placements.cpp" "tests/CMakeFiles/cca_tests.dir/test_placements.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_placements.cpp.o.d"
  "/root/repo/tests/test_replication.cpp" "tests/CMakeFiles/cca_tests.dir/test_replication.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_replication.cpp.o.d"
  "/root/repo/tests/test_revised_simplex.cpp" "tests/CMakeFiles/cca_tests.dir/test_revised_simplex.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_revised_simplex.cpp.o.d"
  "/root/repo/tests/test_rounding.cpp" "tests/CMakeFiles/cca_tests.dir/test_rounding.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_rounding.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/cca_tests.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/cca_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_theorem1.cpp" "tests/CMakeFiles/cca_tests.dir/test_theorem1.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_theorem1.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/cca_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_umbrella.cpp" "tests/CMakeFiles/cca_tests.dir/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_umbrella.cpp.o.d"
  "/root/repo/tests/test_workload_grid.cpp" "tests/CMakeFiles/cca_tests.dir/test_workload_grid.cpp.o" "gcc" "tests/CMakeFiles/cca_tests.dir/test_workload_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cca_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/cca_search.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cca_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cca_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
