file(REMOVE_RECURSE
  "libcca_hash.a"
)
