# Empty dependencies file for cca_hash.
# This may be replaced when dependencies are built.
