file(REMOVE_RECURSE
  "CMakeFiles/cca_hash.dir/md5.cpp.o"
  "CMakeFiles/cca_hash.dir/md5.cpp.o.d"
  "libcca_hash.a"
  "libcca_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
