file(REMOVE_RECURSE
  "libcca_common.a"
)
