# Empty dependencies file for cca_common.
# This may be replaced when dependencies are built.
