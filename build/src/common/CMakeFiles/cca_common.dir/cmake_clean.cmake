file(REMOVE_RECURSE
  "CMakeFiles/cca_common.dir/cli.cpp.o"
  "CMakeFiles/cca_common.dir/cli.cpp.o.d"
  "CMakeFiles/cca_common.dir/rng.cpp.o"
  "CMakeFiles/cca_common.dir/rng.cpp.o.d"
  "CMakeFiles/cca_common.dir/stats.cpp.o"
  "CMakeFiles/cca_common.dir/stats.cpp.o.d"
  "CMakeFiles/cca_common.dir/table.cpp.o"
  "CMakeFiles/cca_common.dir/table.cpp.o.d"
  "CMakeFiles/cca_common.dir/zipf.cpp.o"
  "CMakeFiles/cca_common.dir/zipf.cpp.o.d"
  "libcca_common.a"
  "libcca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
