
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/component_solver.cpp" "src/core/CMakeFiles/cca_core.dir/component_solver.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/component_solver.cpp.o.d"
  "/root/repo/src/core/correlation.cpp" "src/core/CMakeFiles/cca_core.dir/correlation.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/correlation.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/cca_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/lp_formulation.cpp" "src/core/CMakeFiles/cca_core.dir/lp_formulation.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/lp_formulation.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/cca_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/multilevel.cpp" "src/core/CMakeFiles/cca_core.dir/multilevel.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/multilevel.cpp.o.d"
  "/root/repo/src/core/partial_optimizer.cpp" "src/core/CMakeFiles/cca_core.dir/partial_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/partial_optimizer.cpp.o.d"
  "/root/repo/src/core/placements.cpp" "src/core/CMakeFiles/cca_core.dir/placements.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/placements.cpp.o.d"
  "/root/repo/src/core/plan_io.cpp" "src/core/CMakeFiles/cca_core.dir/plan_io.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/plan_io.cpp.o.d"
  "/root/repo/src/core/rounding.cpp" "src/core/CMakeFiles/cca_core.dir/rounding.cpp.o" "gcc" "src/core/CMakeFiles/cca_core.dir/rounding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cca_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cca_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cca_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
