file(REMOVE_RECURSE
  "CMakeFiles/cca_core.dir/component_solver.cpp.o"
  "CMakeFiles/cca_core.dir/component_solver.cpp.o.d"
  "CMakeFiles/cca_core.dir/correlation.cpp.o"
  "CMakeFiles/cca_core.dir/correlation.cpp.o.d"
  "CMakeFiles/cca_core.dir/instance.cpp.o"
  "CMakeFiles/cca_core.dir/instance.cpp.o.d"
  "CMakeFiles/cca_core.dir/lp_formulation.cpp.o"
  "CMakeFiles/cca_core.dir/lp_formulation.cpp.o.d"
  "CMakeFiles/cca_core.dir/migration.cpp.o"
  "CMakeFiles/cca_core.dir/migration.cpp.o.d"
  "CMakeFiles/cca_core.dir/multilevel.cpp.o"
  "CMakeFiles/cca_core.dir/multilevel.cpp.o.d"
  "CMakeFiles/cca_core.dir/partial_optimizer.cpp.o"
  "CMakeFiles/cca_core.dir/partial_optimizer.cpp.o.d"
  "CMakeFiles/cca_core.dir/placements.cpp.o"
  "CMakeFiles/cca_core.dir/placements.cpp.o.d"
  "CMakeFiles/cca_core.dir/plan_io.cpp.o"
  "CMakeFiles/cca_core.dir/plan_io.cpp.o.d"
  "CMakeFiles/cca_core.dir/rounding.cpp.o"
  "CMakeFiles/cca_core.dir/rounding.cpp.o.d"
  "libcca_core.a"
  "libcca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
