
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/bloom.cpp" "src/search/CMakeFiles/cca_search.dir/bloom.cpp.o" "gcc" "src/search/CMakeFiles/cca_search.dir/bloom.cpp.o.d"
  "/root/repo/src/search/compression.cpp" "src/search/CMakeFiles/cca_search.dir/compression.cpp.o" "gcc" "src/search/CMakeFiles/cca_search.dir/compression.cpp.o.d"
  "/root/repo/src/search/inverted_index.cpp" "src/search/CMakeFiles/cca_search.dir/inverted_index.cpp.o" "gcc" "src/search/CMakeFiles/cca_search.dir/inverted_index.cpp.o.d"
  "/root/repo/src/search/query_engine.cpp" "src/search/CMakeFiles/cca_search.dir/query_engine.cpp.o" "gcc" "src/search/CMakeFiles/cca_search.dir/query_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cca_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cca_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
