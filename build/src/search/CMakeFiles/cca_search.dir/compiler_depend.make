# Empty compiler generated dependencies file for cca_search.
# This may be replaced when dependencies are built.
