file(REMOVE_RECURSE
  "CMakeFiles/cca_search.dir/bloom.cpp.o"
  "CMakeFiles/cca_search.dir/bloom.cpp.o.d"
  "CMakeFiles/cca_search.dir/compression.cpp.o"
  "CMakeFiles/cca_search.dir/compression.cpp.o.d"
  "CMakeFiles/cca_search.dir/inverted_index.cpp.o"
  "CMakeFiles/cca_search.dir/inverted_index.cpp.o.d"
  "CMakeFiles/cca_search.dir/query_engine.cpp.o"
  "CMakeFiles/cca_search.dir/query_engine.cpp.o.d"
  "libcca_search.a"
  "libcca_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
