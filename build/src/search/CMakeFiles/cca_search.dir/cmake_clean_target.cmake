file(REMOVE_RECURSE
  "libcca_search.a"
)
