file(REMOVE_RECURSE
  "CMakeFiles/cca_lp.dir/canonical.cpp.o"
  "CMakeFiles/cca_lp.dir/canonical.cpp.o.d"
  "CMakeFiles/cca_lp.dir/dense_simplex.cpp.o"
  "CMakeFiles/cca_lp.dir/dense_simplex.cpp.o.d"
  "CMakeFiles/cca_lp.dir/model.cpp.o"
  "CMakeFiles/cca_lp.dir/model.cpp.o.d"
  "CMakeFiles/cca_lp.dir/revised_simplex.cpp.o"
  "CMakeFiles/cca_lp.dir/revised_simplex.cpp.o.d"
  "CMakeFiles/cca_lp.dir/solver.cpp.o"
  "CMakeFiles/cca_lp.dir/solver.cpp.o.d"
  "libcca_lp.a"
  "libcca_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
