# Empty compiler generated dependencies file for cca_lp.
# This may be replaced when dependencies are built.
