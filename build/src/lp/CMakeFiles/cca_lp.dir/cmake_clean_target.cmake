file(REMOVE_RECURSE
  "libcca_lp.a"
)
