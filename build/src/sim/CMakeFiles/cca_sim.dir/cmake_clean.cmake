file(REMOVE_RECURSE
  "CMakeFiles/cca_sim.dir/cluster.cpp.o"
  "CMakeFiles/cca_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/cca_sim.dir/doc_partition.cpp.o"
  "CMakeFiles/cca_sim.dir/doc_partition.cpp.o.d"
  "CMakeFiles/cca_sim.dir/event_sim.cpp.o"
  "CMakeFiles/cca_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/cca_sim.dir/lookup_table.cpp.o"
  "CMakeFiles/cca_sim.dir/lookup_table.cpp.o.d"
  "CMakeFiles/cca_sim.dir/replay.cpp.o"
  "CMakeFiles/cca_sim.dir/replay.cpp.o.d"
  "libcca_sim.a"
  "libcca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
