# Empty dependencies file for cca_sim.
# This may be replaced when dependencies are built.
