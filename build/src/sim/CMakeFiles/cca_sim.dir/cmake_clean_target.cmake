file(REMOVE_RECURSE
  "libcca_sim.a"
)
