
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/cca_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/cca_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/doc_partition.cpp" "src/sim/CMakeFiles/cca_sim.dir/doc_partition.cpp.o" "gcc" "src/sim/CMakeFiles/cca_sim.dir/doc_partition.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/sim/CMakeFiles/cca_sim.dir/event_sim.cpp.o" "gcc" "src/sim/CMakeFiles/cca_sim.dir/event_sim.cpp.o.d"
  "/root/repo/src/sim/lookup_table.cpp" "src/sim/CMakeFiles/cca_sim.dir/lookup_table.cpp.o" "gcc" "src/sim/CMakeFiles/cca_sim.dir/lookup_table.cpp.o.d"
  "/root/repo/src/sim/replay.cpp" "src/sim/CMakeFiles/cca_sim.dir/replay.cpp.o" "gcc" "src/sim/CMakeFiles/cca_sim.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cca_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/cca_search.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cca_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
