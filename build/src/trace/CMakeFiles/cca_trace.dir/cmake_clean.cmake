file(REMOVE_RECURSE
  "CMakeFiles/cca_trace.dir/documents.cpp.o"
  "CMakeFiles/cca_trace.dir/documents.cpp.o.d"
  "CMakeFiles/cca_trace.dir/pair_stats.cpp.o"
  "CMakeFiles/cca_trace.dir/pair_stats.cpp.o.d"
  "CMakeFiles/cca_trace.dir/trace.cpp.o"
  "CMakeFiles/cca_trace.dir/trace.cpp.o.d"
  "CMakeFiles/cca_trace.dir/trace_io.cpp.o"
  "CMakeFiles/cca_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/cca_trace.dir/workload.cpp.o"
  "CMakeFiles/cca_trace.dir/workload.cpp.o.d"
  "libcca_trace.a"
  "libcca_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
