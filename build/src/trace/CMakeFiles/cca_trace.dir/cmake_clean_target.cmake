file(REMOVE_RECURSE
  "libcca_trace.a"
)
