# Empty dependencies file for cca_trace.
# This may be replaced when dependencies are built.
