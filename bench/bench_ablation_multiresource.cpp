// Ablation D — additional node capacity constraints (Sec. 3.3).
//
// The paper sketches bandwidth/CPU constraints as extra LP rows and leaves
// quantification to future work; this harness does the experiment. Each
// keyword gets a bandwidth demand of (query frequency x index size) — the
// bytes it would serve per trace replay — and nodes get a bandwidth budget
// of `slack` x the average demand. We compare LPRR placements with and
// without the bandwidth rows on modeled communication and on the realized
// per-node bandwidth imbalance.
//
//   ./bench_ablation_multiresource [--scope=800] [--nodes=10] [testbed flags]
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/component_solver.hpp"
#include "core/rounding.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

/// Realized max/mean of per-node demand under a placement.
double demand_imbalance(const std::vector<double>& demands,
                        const core::Placement& placement, int nodes) {
  std::vector<double> loads(static_cast<std::size_t>(nodes), 0.0);
  for (std::size_t i = 0; i < placement.size(); ++i)
    loads[placement[i]] += demands[i];
  double total = 0.0, peak = 0.0;
  for (double v : loads) {
    total += v;
    peak = std::max(peak, v);
  }
  return total > 0.0 ? peak / (total / static_cast<double>(nodes)) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 800));
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation D — bandwidth as a second capacity dimension");

  core::PartialOptimizerConfig opt_cfg;
  opt_cfg.num_nodes = nodes;
  opt_cfg.scope = scope;
  opt_cfg.seed = cfg.seed;
  const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
  const core::PlacementPlan plan = optimizer.run("lprr");

  // Bandwidth demand per scoped keyword: query frequency x index bytes.
  const std::vector<std::size_t> freq = tb.january.keyword_frequencies();
  std::vector<double> demands(plan.scope.size());
  double total_demand = 0.0;
  for (std::size_t pos = 0; pos < plan.scope.size(); ++pos) {
    const trace::KeywordId kw = plan.scope[pos];
    demands[pos] = static_cast<double>(freq[kw]) *
                   static_cast<double>(tb.sizes[kw]);
    total_demand += demands[pos];
  }

  common::Table table({"bw slack", "rounded cost", "bw imbalance",
                       "storage load factor", "feasible"});
  for (const double slack : {0.0, 3.0, 2.0, 1.5, 1.25}) {
    core::CcaInstance instance = optimizer.scoped_instance();  // copy
    if (slack > 0.0) {
      instance.add_resource(core::Resource{
          "bandwidth", demands,
          std::vector<double>(static_cast<std::size_t>(nodes),
                              slack * total_demand /
                                  static_cast<double>(nodes))});
    }
    const std::string label =
        slack > 0.0 ? common::Table::num(slack, 2) : std::string("(off)");
    try {
      const core::FractionalPlacement x =
          core::ComponentLpSolver(cfg.seed).solve(instance);
      common::Rng rng(cfg.seed + 17);
      const core::RoundingResult result = core::round_best_of(
          x, instance, core::RoundingPolicy{16, true}, rng);
      table.add_row({label, common::Table::num(result.cost, 1),
                     common::Table::num(
                         demand_imbalance(demands, result.placement, nodes), 2),
                     common::Table::num(result.max_load_factor, 2),
                     result.feasible ? "yes" : "no"});
    } catch (const common::Error&) {
      // Documented limitation: when the contracted program cannot satisfy
      // the bandwidth rows, the full Fig. 4 LP would be required.
      table.add_row({label, "(contracted program infeasible)", "-", "-", "-"});
    }
  }
  table.print(std::cout);
  std::cout << "\n(bw imbalance = max node bandwidth demand / mean; tighter"
               " slack spreads hot keywords at the price of more"
               " communication)\n";
  bench::write_metrics(cfg);
  return 0;
}
