// Ablation C — capacity-slack factor (Sec. 2.3 / Sec. 4.1).
//
// The paper fixes per-node capacity at 2x the average load and notes that
// "conservative capacities may be used" because the rounding only bounds
// *expected* loads. This sweep varies the slack factor and reports the
// measured communication / realized-balance trade-off for LPRR and greedy.
//
//   ./bench_ablation_capacity [--scope=1000] [--nodes=10] [testbed flags]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation C — capacity slack factor");

  const sim::ReplayStats random = tb.measure("random-hash", nodes, 1);

  common::Table table({"slack", "strategy", "norm. cost", "saving",
                       "storage imbalance", "scoped max-load"});
  for (const double slack : {1.05, 1.25, 1.5, 2.0, 3.0}) {
    for (const std::string_view strategy :
         {"greedy", "lprr"}) {
      core::PlacementPlan plan;
      const sim::ReplayStats stats =
          tb.measure(strategy, nodes, scope, &plan, slack);
      const double norm = static_cast<double>(stats.total_bytes) /
                          static_cast<double>(random.total_bytes);
      table.add_row({common::Table::num(slack, 2), std::string(strategy),
                     common::Table::num(norm, 3),
                     common::Table::pct(1.0 - norm),
                     common::Table::num(stats.storage_imbalance, 2),
                     common::Table::num(plan.scoped_report.max_load_factor,
                                        2)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(smaller slack forces the optimizer to spread correlated"
               " groups: better balance, more communication — the paper's"
               " trade-off made quantitative)\n";
  bench::write_metrics(cfg);
  return 0;
}
