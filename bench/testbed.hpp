// Shared experiment testbed for the bench harnesses.
//
// Every figure-reproduction binary works from the same ingredients the
// paper's evaluation uses (Sec. 4.1): a web corpus with inverted indices,
// a "January" training trace, a "February" evaluation trace, and the
// partial-optimization pipeline. This header centralizes their
// construction so all benches stay parameter-for-parameter comparable.
//
// Scale note (EXPERIMENTS.md): the paper ran 3.7M pages / 6.8M queries /
// 253k keywords with 48-hour LP solves; the defaults here are chosen so
// every bench finishes quickly while keeping the same scope:vocabulary
// and capacity regimes. Flags let you scale up.
//
// Parallelism: every bench accepts --threads=N (or the CCA_THREADS env
// var; default hardware_concurrency) for the common::parallel pool. The
// grid benches additionally evaluate independent grid cells concurrently.
// All table output is bit-identical for any thread count (the substrate's
// determinism contract — see src/common/parallel.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/partial_optimizer.hpp"
#include "core/placement_map.hpp"
#include "lp/solver.hpp"
#include "search/block_postings.hpp"
#include "search/inverted_index.hpp"
#include "sim/cluster.hpp"
#include "sim/faults.hpp"
#include "sim/placement_service.hpp"
#include "sim/pool_map.hpp"
#include "sim/replay.hpp"
#include "trace/documents.hpp"
#include "trace/workload.hpp"

namespace cca::bench {

struct TestbedConfig {
  std::size_t vocabulary = 4000;
  std::size_t documents = 6000;
  double words_per_doc = 80.0;
  std::size_t queries = 40000;
  std::size_t topics = 200;
  std::size_t topic_size = 8;
  double coherence = 0.9;
  bool disjoint_topics = false;
  std::uint64_t seed = 1;
  int threads = 0;        // resolved pool size (after --threads/CCA_THREADS)
  int seeds = 3;          // --seeds=K: independent testbeds per grid row
  bool csv = false;       // --csv: machine-readable table output
  std::string json_path;  // --json=<path>: machine-readable per-cell dump
  /// --metrics=<path>: enables the process-wide MetricsRegistry and names
  /// the JSON file write_metrics() dumps at exit. Enabling metrics never
  /// changes bench stdout (the contract tested by the smoke suite).
  std::string metrics_path;
  /// --miner={exact,sketch} plus --miner-pairs/--miner-objects/
  /// --miner-width/--miner-depth: which correlation miner feeds every
  /// optimizer built from this testbed. Default exact — the historical
  /// byte-identical pipeline.
  core::MinerOptions miner;
  /// --hash-tail={md5,jump}: the hash rule placing out-of-scope keywords
  /// and backing every installed PlacementMap. Default md5 — the paper's
  /// baseline and the historical byte-identical output.
  core::HashTail hash_tail = core::HashTail::kMd5;
  /// --churn=add:t,node;remove:t,node — membership events on the
  /// query-arrival clock, parsed strictly (empty = no churn).
  std::vector<sim::ChurnEvent> churn;

  static TestbedConfig from_cli(const common::CliArgs& args) {
    TestbedConfig cfg;
    cfg.vocabulary =
        static_cast<std::size_t>(args.get_int("vocab", cfg.vocabulary));
    cfg.documents =
        static_cast<std::size_t>(args.get_int("docs", cfg.documents));
    cfg.queries =
        static_cast<std::size_t>(args.get_int("queries", cfg.queries));
    cfg.topics = static_cast<std::size_t>(args.get_int("topics", cfg.topics));
    cfg.coherence = args.get_double("coherence", cfg.coherence);
    cfg.disjoint_topics = args.get_bool("disjoint", cfg.disjoint_topics);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", cfg.seed));
    cfg.seeds = static_cast<int>(args.get_int("seeds", cfg.seeds));
    cfg.csv = args.get_bool("csv", cfg.csv);
    cfg.json_path = args.get_string("json", "");
    cfg.metrics_path = args.get_string("metrics", "");
    if (!cfg.metrics_path.empty())
      common::MetricsRegistry::global().set_enabled(true);
    const std::string miner = args.get_string("miner", "exact");
    CCA_CHECK_MSG(core::MinerOptions::parse_kind(miner, &cfg.miner.kind),
                  "--miner must be 'exact' or 'sketch', got '" << miner
                                                               << "'");
    cfg.miner.sketch.top_pairs = static_cast<std::size_t>(args.get_int(
        "miner-pairs", static_cast<std::int64_t>(cfg.miner.sketch.top_pairs)));
    cfg.miner.sketch.top_objects = static_cast<std::size_t>(
        args.get_int("miner-objects",
                     static_cast<std::int64_t>(cfg.miner.sketch.top_objects)));
    cfg.miner.sketch.cm_width = static_cast<std::size_t>(args.get_int(
        "miner-width", static_cast<std::int64_t>(cfg.miner.sketch.cm_width)));
    cfg.miner.sketch.cm_depth = static_cast<std::size_t>(args.get_int(
        "miner-depth", static_cast<std::int64_t>(cfg.miner.sketch.cm_depth)));
    // LP engine knobs, applied process-wide so every solve in the run
    // inherits them (see the default_* setters in src/lp/solution.hpp and
    // src/lp/solver.hpp). All are answer-invariant: they change how fast
    // the simplex reaches the optimum, never which optimum. A bad value
    // is a hard error naming the flag, the accepted values, and the
    // closest candidate.
    const auto enum_error = [](const char* flag, const std::string& got,
                               const std::vector<std::string>& accepted) {
      common::reject_enum_value(flag, got, accepted);
    };
    const std::string tail = args.get_string("hash-tail", "");
    if (!tail.empty() && !core::parse_hash_tail(tail, &cfg.hash_tail))
      enum_error("hash-tail", tail, {"md5", "jump"});
    // --codec={block,varint}: the posting codec every QueryEngine built
    // from this process uses. Answer-invariant by construction (both
    // codecs decode to the same ID sequence; the cost model is
    // untouched) — it selects the serving data plane's speed, with
    // varint kept as the ablation baseline.
    const std::string codec = args.get_string("codec", "");
    if (!codec.empty()) {
      search::PostingCodec posting_codec;
      if (!search::parse_posting_codec(codec, &posting_codec))
        enum_error("codec", codec, {"block", "varint"});
      search::set_default_posting_codec(posting_codec);
    }
    cfg.churn = sim::parse_churn_script(args.get_string("churn", ""));
    const std::string pricing = args.get_string("lp-pricing", "");
    if (!pricing.empty()) {
      lp::PricingRule rule;
      if (!lp::parse_pricing(pricing, &rule))
        enum_error("lp-pricing", pricing, {"dantzig", "candidate"});
      lp::set_default_pricing(rule);
    }
    const long refactor =
        static_cast<long>(args.get_int("lp-refactor-interval", 0));
    CCA_CHECK_MSG(refactor >= 0, "--lp-refactor-interval must be positive");
    if (refactor > 0) lp::set_default_refactor_interval(refactor);
    const std::string warm = args.get_string("lp-warm-start", "");
    if (!warm.empty()) {
      if (warm != "on" && warm != "off")
        enum_error("lp-warm-start", warm, {"on", "off"});
      lp::set_default_warm_start(warm == "on");
    }
    const std::string presolve = args.get_string("lp-presolve", "");
    if (!presolve.empty()) {
      if (presolve != "on" && presolve != "off")
        enum_error("lp-presolve", presolve, {"on", "off"});
      lp::set_default_presolve(presolve == "on");
    }
    const std::string backend = args.get_string("lp-backend", "");
    if (!backend.empty()) {
      lp::SolverKind kind;
      if (!lp::parse_solver_kind(backend, &kind))
        enum_error("lp-backend", backend,
                   {"auto", "dense", "revised", "dual", "auto-dual"});
      lp::set_default_solver_kind(kind);
      // The dual warm-restart lane follows the backend: the primal-only
      // 'revised' lane pins it off (the PR-4 ablation baseline), 'dual' /
      // 'auto-dual' force it on, 'auto' / 'dense' keep the process
      // default.
      if (kind == lp::SolverKind::kRevised)
        lp::set_default_dual_lane(false);
      else if (kind == lp::SolverKind::kDual ||
               kind == lp::SolverKind::kAutoDual)
        lp::set_default_dual_lane(true);
    }
    // The thread knob takes effect immediately: every bench parses its
    // flags before doing any work, so the pool is sized before first use.
    const int threads = static_cast<int>(args.get_int("threads", 0));
    if (threads > 0) common::set_global_threads(threads);
    cfg.threads = common::configured_threads();
    return cfg;
  }

  /// A copy with the seed advanced by `offset` — the per-seed config of a
  /// multi-seed grid row.
  TestbedConfig with_seed_offset(std::uint64_t offset) const {
    TestbedConfig copy = *this;
    copy.seed = seed + offset;
    return copy;
  }
};

/// The shared fault-injection flag group (--faults, --mttf, --mttr, ...).
/// Any bench that can simulate failures parses this next to its
/// TestbedConfig; with --faults absent the group is inert and the bench
/// must produce its healthy output byte for byte.
///
/// The hierarchical extension rides the same group: --topology installs
/// the failure-domain tree (rows:racks:nodes, or @<script>),
/// --replica-spread={flat,rack,row} picks the replica-tail rule,
/// --rack-mttf/--row-mttf (with their --*-mttr) enable correlated
/// whole-domain fault draws, and --fault-script pins an explicit event
/// timeline (node- and domain-level). Everything is validated here, at
/// parse time: spread or domain faults without a topology, malformed
/// scripts, and nonsensical retry backoffs all fail before any work runs.
struct FaultFlags {
  bool enabled = false;        // --faults
  double mttf_ms = 10000.0;    // --mttf: mean time to failure, ms
  double mttr_ms = 1000.0;     // --mttr: mean time to repair, ms
  double horizon_ms = 60000.0; // --fault-horizon: schedule span, ms
  std::uint64_t fault_seed = 1;  // --fault-seed: schedule substream
  int degree = 1;              // --degree: replicas beyond the primary
  double timeout_ms = 5.0;     // --timeout-ms: dead-contact timeout
  int max_attempts = 3;        // --max-attempts: contacts per fetch
  double base_backoff_ms = 1.0;   // --base-backoff-ms: first retry wait
  double max_backoff_ms = 64.0;   // --max-backoff-ms: backoff cap
  double rack_mttf_ms = 0.0;      // --rack-mttf: 0 = no rack faults
  double rack_mttr_ms = 2000.0;   // --rack-mttr
  double row_mttf_ms = 0.0;       // --row-mttf: 0 = no row faults
  double row_mttr_ms = 5000.0;    // --row-mttr
  double rebuild_mbps = 800.0;    // --rebuild-mbps: per-node ingest
  /// --replica-spread: how replica tails relate to the topology.
  core::ReplicaSpread spread = core::ReplicaSpread::kFlat;
  /// --topology: the failure-domain tree; null = flat cluster.
  std::shared_ptr<const sim::PoolMap> pool;
  /// --fault-script: explicit node/rack/row events (empty = generated).
  std::vector<sim::DomainFaultEvent> script;

  static FaultFlags from_cli(const common::CliArgs& args) {
    FaultFlags f;
    f.enabled = args.get_bool("faults", f.enabled);
    f.mttf_ms = args.get_double("mttf", f.mttf_ms);
    f.mttr_ms = args.get_double("mttr", f.mttr_ms);
    f.horizon_ms = args.get_double("fault-horizon", f.horizon_ms);
    f.fault_seed =
        static_cast<std::uint64_t>(args.get_int("fault-seed", f.fault_seed));
    f.degree = static_cast<int>(args.get_int("degree", f.degree));
    f.timeout_ms = args.get_double("timeout-ms", f.timeout_ms);
    f.max_attempts =
        static_cast<int>(args.get_int("max-attempts", f.max_attempts));
    f.base_backoff_ms =
        args.get_double("base-backoff-ms", f.base_backoff_ms);
    f.max_backoff_ms = args.get_double("max-backoff-ms", f.max_backoff_ms);
    f.rack_mttf_ms = args.get_double("rack-mttf", f.rack_mttf_ms);
    f.rack_mttr_ms = args.get_double("rack-mttr", f.rack_mttr_ms);
    f.row_mttf_ms = args.get_double("row-mttf", f.row_mttf_ms);
    f.row_mttr_ms = args.get_double("row-mttr", f.row_mttr_ms);
    f.rebuild_mbps = args.get_double("rebuild-mbps", f.rebuild_mbps);
    const std::string topology = args.get_string("topology", "");
    if (!topology.empty())
      f.pool = std::make_shared<const sim::PoolMap>(
          sim::parse_topology(topology));
    const std::string spread = args.get_string("replica-spread", "");
    if (!spread.empty() && !core::parse_replica_spread(spread, &f.spread))
      common::reject_enum_value("replica-spread", spread,
                                {"flat", "rack", "row"});
    f.script = sim::parse_fault_script(args.get_string("fault-script", ""));
    CCA_CHECK_MSG(f.spread == core::ReplicaSpread::kFlat || f.pool,
                  "--replica-spread="
                      << core::replica_spread_name(f.spread)
                      << " needs a failure-domain tree; pass --topology");
    CCA_CHECK_MSG(f.rebuild_mbps > 0.0,
                  "--rebuild-mbps must be positive, got " << f.rebuild_mbps);
    if (!f.pool) {
      CCA_CHECK_MSG(f.rack_mttf_ms == 0.0 && f.row_mttf_ms == 0.0,
                    "--rack-mttf/--row-mttf model whole-domain faults; pass "
                    "--topology");
      for (const sim::DomainFaultEvent& ev : f.script)
        CCA_CHECK_MSG(ev.domain == sim::FaultDomain::kNode,
                      "--fault-script has rack/row events; pass --topology");
    }
    // Rejects zero/negative backoffs, attempts < 1, cap below base — at
    // parse time, not mid-replay.
    f.retry_policy().validate();
    return f;
  }

  sim::FaultScheduleConfig schedule_config() const {
    sim::FaultScheduleConfig cfg;
    cfg.mttf_ms = mttf_ms;
    cfg.mttr_ms = mttr_ms;
    cfg.horizon_ms = horizon_ms;
    cfg.seed = fault_seed;
    cfg.rack_mttf_ms = rack_mttf_ms;
    cfg.rack_mttr_ms = rack_mttr_ms;
    cfg.row_mttf_ms = row_mttf_ms;
    cfg.row_mttr_ms = row_mttr_ms;
    return cfg;
  }

  sim::RetryPolicy retry_policy() const {
    sim::RetryPolicy retry;
    retry.timeout_ms = timeout_ms;
    retry.max_attempts = max_attempts;
    retry.base_backoff_ms = base_backoff_ms;
    retry.max_backoff_ms = max_backoff_ms;
    retry.seed = fault_seed;
    return retry;
  }

  /// The fault timeline for an `nodes`-node cluster, honouring the whole
  /// flag group: scripted events win, then hierarchical generation when
  /// a topology is installed, else the per-node baseline (byte-identical
  /// to the pre-topology behavior).
  sim::FaultSchedule build_schedule(int nodes) const {
    if (!script.empty()) {
      // Node-only scripts without --topology expand against the
      // single-rack flat pool (validated above).
      if (pool) return sim::FaultSchedule::from_domain_events(*pool, script);
      return sim::FaultSchedule::from_domain_events(sim::PoolMap::flat(nodes),
                                                    script);
    }
    if (pool && (rack_mttf_ms > 0.0 || row_mttf_ms > 0.0))
      return sim::FaultSchedule::generate_hierarchical(*pool,
                                                       schedule_config());
    return sim::FaultSchedule::generate(nodes, schedule_config());
  }
};

/// Prints `table` honouring --csv. Shared by every bench so the flag
/// behaves identically everywhere.
inline void print_table(const common::Table& table, const TestbedConfig& cfg) {
  if (cfg.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Dumps the process-wide metrics registry as JSON to --metrics=<path>
/// (no-op when the flag was not passed). The confirmation note goes to
/// stderr: stdout must stay byte-identical with metrics on or off.
inline void write_metrics(const TestbedConfig& cfg) {
  if (cfg.metrics_path.empty()) return;
  std::ofstream out(cfg.metrics_path);
  CCA_CHECK_MSG(out.good(), "cannot write metrics to " << cfg.metrics_path);
  common::MetricsRegistry::global().write_json(out);
  std::cerr << "wrote metrics to " << cfg.metrics_path << "\n";
}

/// One measured grid cell with its wall-clock, for tables and --json.
struct CellResult {
  sim::ReplayStats stats;
  double wall_ms = 0.0;
};

/// Collects per-cell records and dumps them as a JSON array so the perf
/// trajectory (BENCH_*.json) can be tracked across PRs. Append rows in
/// deterministic (grid) order after the parallel join; the writer itself
/// is not thread-safe.
class JsonLog {
 public:
  /// `path` empty disables the log (add/write become no-ops).
  explicit JsonLog(std::string path) : path_(std::move(path)) {}

  void add(const TestbedConfig& cfg, const char* strategy, int nodes,
           std::size_t scope, const CellResult& cell) {
    if (path_.empty()) return;
    std::ostringstream row;
    row << "  {\"seed\": " << cfg.seed << ", \"threads\": " << cfg.threads
        << ", \"scope\": " << scope << ", \"nodes\": " << nodes
        << ", \"strategy\": \"" << strategy << "\""
        << ", \"total_bytes\": " << cell.stats.total_bytes
        << ", \"mean_bytes_per_query\": " << cell.stats.mean_bytes_per_query
        << ", \"p99_bytes_per_query\": " << cell.stats.p99_bytes_per_query
        << ", \"mean_latency_ms\": " << cell.stats.mean_latency_ms
        << ", \"p99_latency_ms\": " << cell.stats.p99_latency_ms
        << ", \"storage_imbalance\": " << cell.stats.storage_imbalance
        << ", \"wall_ms\": " << cell.wall_ms << "}";
    rows_.push_back(row.str());
  }

  /// Writes the collected array; call once, after all adds.
  void write() const {
    if (path_.empty() || rows_.empty()) return;
    std::ofstream out(path_);
    CCA_CHECK_MSG(out.good(), "cannot write JSON log to " << path_);
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    out << "]\n";
    std::cout << "\nwrote " << rows_.size() << " cells to " << path_ << "\n";
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

struct Testbed {
  TestbedConfig config;
  trace::WorkloadModel model;
  trace::QueryTrace january;
  trace::QueryTrace february;
  search::InvertedIndex index;
  std::vector<std::uint64_t> sizes;
  double total_index_bytes = 0.0;

  static Testbed build(const TestbedConfig& cfg) {
    trace::CorpusConfig corpus_cfg;
    corpus_cfg.num_documents = cfg.documents;
    corpus_cfg.vocabulary_size = cfg.vocabulary;
    corpus_cfg.mean_distinct_words = cfg.words_per_doc;
    corpus_cfg.seed = cfg.seed;

    trace::WorkloadConfig query_cfg;
    query_cfg.vocabulary_size = cfg.vocabulary;
    query_cfg.num_topics = cfg.topics;
    query_cfg.topic_size = cfg.topic_size;
    query_cfg.topic_coherence = cfg.coherence;
    query_cfg.disjoint_topics = cfg.disjoint_topics;
    query_cfg.seed = cfg.seed;

    Testbed tb{cfg,
               trace::WorkloadModel(query_cfg),
               trace::QueryTrace(),
               trace::QueryTrace(),
               search::InvertedIndex(),
               {},
               0.0};
    tb.january = tb.model.generate(cfg.queries, cfg.seed * 7919 + 1);
    tb.february = tb.model.generate(cfg.queries, cfg.seed * 104729 + 2);
    tb.index =
        search::InvertedIndex::build(trace::Corpus::generate(corpus_cfg));
    tb.sizes = tb.index.index_sizes();
    for (std::uint64_t s : tb.sizes)
      tb.total_index_bytes += static_cast<double>(s);
    return tb;
  }

  void print_banner(const char* title) const {
    std::cout << title << "\n"
              << "testbed: vocab=" << config.vocabulary
              << " docs=" << config.documents << " queries=" << config.queries
              << " topics=" << config.topics
              << (config.disjoint_topics ? " (disjoint)" : " (overlapping)")
              << " coherence=" << config.coherence << " seed=" << config.seed
              << " threads=" << config.threads
              << " index=" << static_cast<long>(total_index_bytes / 1024)
              << "KiB\n\n";
  }

  /// The optimizer config every strategy run starts from, so benches that
  /// build their own optimizers stay parameter-for-parameter comparable.
  core::PartialOptimizerConfig optimizer_config(int nodes, std::size_t scope,
                                                double capacity_slack =
                                                    2.0) const {
    core::PartialOptimizerConfig cfg;
    cfg.num_nodes = nodes;
    cfg.scope = scope;
    cfg.seed = config.seed;
    cfg.capacity_slack = capacity_slack;
    cfg.hash_tail = config.hash_tail;
    cfg.miner = config.miner;
    cfg.rounding.trials = 16;
    return cfg;
  }

  /// Wraps a finished plan as the placement epoch the serving side
  /// installs (this testbed's hash tail; epoch 0). Passing a pool map
  /// and spread builds domain-aware replica tails; the flat default is
  /// the historical behavior.
  std::shared_ptr<const core::PlacementMap> build_map(
      const std::vector<core::NodeId>& keyword_to_node, int nodes,
      int degree = 0,
      core::ReplicaSpread spread = core::ReplicaSpread::kFlat,
      const sim::PoolMap* pool = nullptr) const {
    core::PlacementMapConfig map_cfg;
    map_cfg.num_nodes = nodes;
    map_cfg.degree = degree;
    map_cfg.hash_tail = config.hash_tail;
    map_cfg.spread = spread;
    if (pool) {
      CCA_CHECK_MSG(pool->num_nodes() == nodes,
                    "--topology describes " << pool->num_nodes()
                                            << " nodes, bench wants "
                                            << nodes);
      map_cfg.node_rack = pool->node_rack();
      map_cfg.rack_row = pool->rack_row();
      map_cfg.pool_version = pool->version();
    }
    return std::make_shared<const core::PlacementMap>(
        core::PlacementMap::build(keyword_to_node, map_cfg));
  }

  /// Runs one strategy end-to-end and replays the February trace.
  sim::ReplayStats measure(std::string_view strategy, int nodes,
                           std::size_t scope,
                           core::PlacementPlan* plan_out = nullptr,
                           double capacity_slack = 2.0) const {
    const core::PartialOptimizer optimizer(
        january, sizes, optimizer_config(nodes, scope, capacity_slack));
    const core::PlacementPlan plan = optimizer.run(strategy);
    if (plan_out) *plan_out = plan;

    sim::Cluster cluster(nodes,
                         capacity_slack * total_index_bytes / nodes);
    cluster.install_placement(build_map(plan.keyword_to_node, nodes), sizes);
    return sim::replay_trace(cluster, index, february);
  }

  /// measure() plus wall-clock, for grid cells and the --json dump.
  CellResult measure_cell(std::string_view strategy, int nodes,
                          std::size_t scope) const {
    const auto start = std::chrono::steady_clock::now();
    CellResult cell;
    cell.stats = measure(strategy, nodes, scope);
    cell.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return cell;
  }
};

}  // namespace cca::bench
