// Ablation J — full replication of hot keywords vs placement.
//
// The paper's Sec. 5 points to the authors' companion work on
// replication-degree customization. The simplest instance of that idea:
// give the R most query-frequent keywords a replica on EVERY node, so they
// never cause transfers, at a storage cost of (N-1) extra copies each.
// This harness sweeps R for the random and LPRR placements and reports
// the communication saved per byte of replica storage — quantifying how
// replication and correlation-aware placement overlap (both co-locate the
// head of the workload; replication also helps the tail random placement
// leaves behind).
//
//   ./bench_ablation_replication [--nodes=10] [--scope=1000] [testbed flags]
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "search/query_engine.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation J — hot-keyword replication vs placement");

  // Replication candidates: keywords by descending query frequency.
  const std::vector<std::size_t> freq = tb.january.keyword_frequencies();
  std::vector<trace::KeywordId> by_frequency(tb.sizes.size());
  for (std::size_t k = 0; k < by_frequency.size(); ++k)
    by_frequency[k] = static_cast<trace::KeywordId>(k);
  std::sort(by_frequency.begin(), by_frequency.end(),
            [&](trace::KeywordId a, trace::KeywordId b) {
              return freq[a] != freq[b] ? freq[a] > freq[b] : a < b;
            });

  const core::PartialOptimizer optimizer(tb.january, tb.sizes,
                                         tb.optimizer_config(nodes, scope));
  const search::QueryEngine engine(tb.index);

  common::Table table({"replicated R", "strategy", "KiB moved", "saving",
                       "replica storage KiB"});
  std::uint64_t baseline = 0;  // unreplicated random hash
  for (const std::size_t replicas : {std::size_t{0}, std::size_t{10},
                                     std::size_t{50}, std::size_t{100},
                                     std::size_t{250}}) {
    std::vector<char> replicated(tb.sizes.size(), 0);
    std::uint64_t replica_bytes = 0;
    for (std::size_t r = 0; r < replicas; ++r) {
      replicated[by_frequency[r]] = 1;
      replica_bytes += tb.sizes[by_frequency[r]] *
                       static_cast<std::uint64_t>(nodes - 1);
    }

    for (const std::string_view strategy :
         {"random-hash", "lprr"}) {
      const core::PlacementPlan plan = optimizer.run(strategy);
      // Replicated keywords resolve to the full-degree set (a copy on
      // every node); the rest to their placement's singleton.
      const auto placement = [&](trace::KeywordId k) {
        return replicated[k]
                   ? core::ReplicaSet{plan.keyword_to_node[k], nodes - 1,
                                      nodes}
                   : core::ReplicaSet{plan.keyword_to_node[k], 0, nodes};
      };
      std::uint64_t total_bytes = 0;
      for (const trace::Query& query : tb.february.queries())
        total_bytes +=
            engine.execute_intersection(query, placement).bytes_transferred;

      if (replicas == 0 && strategy == "random-hash")
        baseline = total_bytes;
      table.add_row(
          {std::to_string(replicas), std::string(strategy),
           common::Table::num(static_cast<double>(total_bytes) / 1024, 1),
           common::Table::pct(1.0 - static_cast<double>(total_bytes) /
                                        static_cast<double>(baseline)),
           common::Table::num(static_cast<double>(replica_bytes) / 1024,
                              1)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(savings relative to unreplicated random hash; replica"
               " storage is the extra (N-1) copies of each replicated"
               " index. Replication rescues random placement's head"
               " traffic; LPRR already co-located it, so its gain is the"
               " tail the scope missed.)\n";
  bench::write_metrics(cfg);
  return 0;
}
