# Smoke contract: a bench's stdout matches a checked-in golden transcript
# byte for byte. Guards the faults-disabled path: growing the serving
# layer (replication, retries, fault stats) must not change what a
# healthy run prints. Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DGOLDEN=... -P <this>
execute_process(
  COMMAND ${BENCH} ${TB_ARGS}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench failed with exit code ${rc}")
endif()

file(READ ${GOLDEN} golden)
if(NOT out STREQUAL golden)
  message(FATAL_ERROR "stdout differs from golden transcript ${GOLDEN}; "
    "if the change is intentional, re-capture the golden file with the "
    "command in its sibling README")
endif()
