// Ablation G — Bloom-assisted intersection (companion work [13]).
//
// Bloom filters attack the same communication the placement attacks, from
// the protocol side: a separated pair exchanges a filter + candidates
// instead of a whole posting list. This harness replays the trace with
// and without Bloom assistance under every placement strategy, measuring
// (a) how much the protocol saves on its own and (b) how much placement
// still matters once the protocol is smarter — the two techniques
// overlap, so LPRR's relative advantage narrows under Bloom.
//
//   ./bench_ablation_bloom [--nodes=10] [--scope=1000] [testbed flags]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation G — Bloom-assisted intersection vs placement");

  const core::PartialOptimizerConfig opt_cfg = tb.optimizer_config(nodes,
                                                                   scope);
  const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
  const double capacity =
      opt_cfg.capacity_slack * tb.total_index_bytes / nodes;

  common::Table table({"strategy", "classic KiB", "bloom KiB",
                       "bloom saving", "bloom msgs/query"});
  std::uint64_t random_classic = 0, random_bloom = 0, lprr_classic = 0,
                lprr_bloom = 0;
  for (const std::string_view strategy :
       {"random-hash", "greedy",
        "multilevel", "lprr"}) {
    const core::PlacementPlan plan = optimizer.run(strategy);
    const auto map = tb.build_map(plan.keyword_to_node, nodes);
    sim::Cluster classic_cluster(nodes, capacity);
    classic_cluster.install_placement(map, tb.sizes);
    const sim::ReplayStats classic = sim::replay_trace(
        classic_cluster, tb.index, tb.february,
        sim::OperationKind::kIntersection);
    sim::Cluster bloom_cluster(nodes, capacity);
    bloom_cluster.install_placement(map, tb.sizes);
    const sim::ReplayStats bloom = sim::replay_trace(
        bloom_cluster, tb.index, tb.february,
        sim::OperationKind::kIntersectionBloom);

    if (strategy == "random-hash") {
      random_classic = classic.total_bytes;
      random_bloom = bloom.total_bytes;
    }
    if (strategy == "lprr") {
      lprr_classic = classic.total_bytes;
      lprr_bloom = bloom.total_bytes;
    }
    table.add_row(
        {std::string(strategy),
         common::Table::num(static_cast<double>(classic.total_bytes) / 1024,
                            1),
         common::Table::num(static_cast<double>(bloom.total_bytes) / 1024, 1),
         common::Table::pct(1.0 - static_cast<double>(bloom.total_bytes) /
                                      static_cast<double>(classic.total_bytes)),
         common::Table::num(static_cast<double>(bloom.total_messages) /
                                static_cast<double>(bloom.queries),
                            2)});
  }
  table.print(std::cout);

  std::cout << "\nLPRR saving vs random: "
            << common::Table::pct(1.0 - static_cast<double>(lprr_classic) /
                                            static_cast<double>(
                                                random_classic))
            << " with classic intersection, "
            << common::Table::pct(1.0 - static_cast<double>(lprr_bloom) /
                                            static_cast<double>(random_bloom))
            << " with Bloom assistance\n"
            << "(the protocol and the placement attack the same bytes;"
               " combining both still wins overall)\n";
  bench::write_metrics(cfg);
  return 0;
}
