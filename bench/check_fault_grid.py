"""Validates a bench_fault_tolerance --json dump from a topology run.

The dump mixes four row kinds, told apart by their keys: Table-1 serving
cells ("mttf_ms"), recovery-budget cells ("recovery_budget"), domain
outage grid cells ("granularity" + "spread"), and rebuild cells
("rebuild_mode"). The checker enforces:

  * coverage — the outage grid carries every (granularity, spread,
    degree) cell exactly once, over at least the node and rack
    granularities (a topology too small to host a rack outage cannot
    exercise the headline and fails);
  * monotonicity — availability never decreases with replication degree,
    in Table 1 per (timeline, strategy) and in the grid per
    (granularity, spread). Replica tails are nested across degrees, so a
    higher degree only ever adds failover options;
  * the spread headline — under a whole-rack outage, rack-spread
    replicas beat flat replicas: strictly at degree >= 2, and never
    worse at degree 1. Row-spread likewise never loses to flat under a
    whole-row outage;
  * the rebuild headline — whenever both modes re-place the same >= 2
    lost objects, the declustered makespan is strictly below the
    single-successor funnel's, and declustering uses at least as many
    destinations;
  * sanity — availabilities and coverages sit in [0, 1], latencies and
    counters are non-negative.

Usage: python3 check_fault_grid.py <grid.json>
"""
import json
import sys

GRID_REQUIRED = {
    "seed", "threads", "granularity", "spread", "degree", "availability",
    "mean_coverage", "p99_latency_ms", "retries", "failovers",
    "unserved_keywords", "replica_bytes",
}

REBUILD_REQUIRED = {
    "seed", "threads", "granularity", "rebuild_mode", "objects_lost",
    "objects_recovered", "rebuild_destinations", "rebuild_makespan_ms",
    "bytes_migrated",
}


def check_fraction(row, key):
    if not 0.0 <= row[key] <= 1.0:
        raise SystemExit(f"{key} outside [0, 1]: {row}")


def main(path):
    with open(path) as f:
        rows = json.load(f)
    if not rows:
        raise SystemExit("fault grid dump is empty")

    serving = [r for r in rows if "mttf_ms" in r]
    grid = [r for r in rows if "granularity" in r and "spread" in r]
    rebuild = [r for r in rows if "rebuild_mode" in r]
    if not serving:
        raise SystemExit("dump carries no Table-1 serving cells")
    if not grid:
        raise SystemExit(
            "dump carries no outage grid cells (was --topology passed?)")
    if not rebuild:
        raise SystemExit("dump carries no rebuild cells")

    # Table 1: availability monotone in degree per (timeline, strategy).
    by_timeline = {}
    for r in serving:
        check_fraction(r, "availability")
        check_fraction(r, "mean_coverage")
        by_timeline.setdefault((r["mttf_ms"], r["strategy"]), []).append(r)
    for (mttf, strategy), cells in sorted(by_timeline.items()):
        cells.sort(key=lambda r: r["degree"])
        for lo, hi in zip(cells, cells[1:]):
            if hi["availability"] < lo["availability"]:
                raise SystemExit(
                    f"Table 1 ({mttf=}, {strategy}): availability fell from "
                    f"{lo['availability']:.4f} (degree {lo['degree']}) to "
                    f"{hi['availability']:.4f} (degree {hi['degree']})")

    # Outage grid: schema, uniqueness, full (granularity x spread x
    # degree) coverage.
    by_cell = {}
    for r in grid:
        missing = GRID_REQUIRED - set(r)
        if missing:
            raise SystemExit(f"grid cell {r} missing keys {sorted(missing)}")
        check_fraction(r, "availability")
        check_fraction(r, "mean_coverage")
        if r["p99_latency_ms"] < 0 or r["retries"] < 0 or r["failovers"] < 0:
            raise SystemExit(f"negative latency/counter: {r}")
        key = (r["granularity"], r["spread"], r["degree"])
        if key in by_cell:
            raise SystemExit(f"duplicate grid cell {key}")
        by_cell[key] = r

    granularities = {g for g, _, _ in by_cell}
    spreads = {s for _, s, _ in by_cell}
    degrees = {d for _, _, d in by_cell}
    if not {"node", "rack"} <= granularities:
        raise SystemExit(
            f"grid lacks node+rack granularities: {sorted(granularities)} "
            "(topology needs >= 2 racks to judge the spread headline)")
    if not {"flat", "rack"} <= spreads:
        raise SystemExit(f"grid lacks flat+rack spreads: {sorted(spreads)}")
    for g in sorted(granularities):
        for s in sorted(spreads):
            for d in sorted(degrees):
                if (g, s, d) not in by_cell:
                    raise SystemExit(f"missing grid cell {(g, s, d)}")

    # Grid monotonicity in degree per (granularity, spread).
    for g in sorted(granularities):
        for s in sorted(spreads):
            cells = sorted((d, by_cell[(g, s, d)]) for d in degrees)
            for (dlo, lo), (dhi, hi) in zip(cells, cells[1:]):
                if hi["availability"] < lo["availability"]:
                    raise SystemExit(
                        f"grid ({g}, {s}): availability fell from "
                        f"{lo['availability']:.4f} (degree {dlo}) to "
                        f"{hi['availability']:.4f} (degree {dhi})")

    # The spread headline under whole-domain outages.
    judged_spread = 0
    for domain in ("rack", "row"):
        if domain not in granularities or domain not in spreads:
            continue
        for d in sorted(degrees):
            flat = by_cell[(domain, "flat", d)]["availability"]
            spread = by_cell[(domain, domain, d)]["availability"]
            if spread < flat:
                raise SystemExit(
                    f"{domain}-spread ({spread:.4f}) lost to flat "
                    f"({flat:.4f}) under a {domain} outage at degree {d}")
            if d >= 2 and domain == "rack" and spread <= flat:
                raise SystemExit(
                    f"rack-spread ({spread:.4f}) did not strictly beat flat "
                    f"({flat:.4f}) under a rack outage at degree {d}")
            judged_spread += 1
    if judged_spread == 0:
        raise SystemExit("no whole-domain outage cell judged the headline")

    # Rebuild: declustered beats the successor funnel whenever both modes
    # re-placed the same non-trivial loss.
    by_rebuild = {}
    for r in rebuild:
        missing = REBUILD_REQUIRED - set(r)
        if missing:
            raise SystemExit(
                f"rebuild cell {r} missing keys {sorted(missing)}")
        if r["rebuild_makespan_ms"] < 0 or r["rebuild_destinations"] < 0:
            raise SystemExit(f"negative rebuild stats: {r}")
        key = (r["granularity"], r["rebuild_mode"])
        if key in by_rebuild:
            raise SystemExit(f"duplicate rebuild cell {key}")
        by_rebuild[key] = r
    judged_rebuild = 0
    for g in sorted(granularities):
        if (g, "successor") not in by_rebuild:
            raise SystemExit(f"missing rebuild cell ({g}, successor)")
        if (g, "declustered") not in by_rebuild:
            raise SystemExit(f"missing rebuild cell ({g}, declustered)")
        succ = by_rebuild[(g, "successor")]
        decl = by_rebuild[(g, "declustered")]
        if succ["objects_lost"] != decl["objects_lost"]:
            raise SystemExit(
                f"rebuild modes saw different losses at {g}: "
                f"{succ['objects_lost']} vs {decl['objects_lost']}")
        if min(succ["objects_recovered"], decl["objects_recovered"]) < 2:
            continue
        if decl["rebuild_destinations"] < succ["rebuild_destinations"]:
            raise SystemExit(
                f"declustered used fewer destinations than the funnel at "
                f"{g}: {decl['rebuild_destinations']} < "
                f"{succ['rebuild_destinations']}")
        if decl["rebuild_makespan_ms"] >= succ["rebuild_makespan_ms"]:
            raise SystemExit(
                f"declustered makespan ({decl['rebuild_makespan_ms']:.3f}ms) "
                f"did not beat the successor funnel "
                f"({succ['rebuild_makespan_ms']:.3f}ms) at {g}")
        judged_rebuild += 1
    if judged_rebuild == 0:
        raise SystemExit(
            "no rebuild pair recovered >= 2 objects; nothing judged "
            "(grow the scope or the dead domain)")

    print(f"{len(rows)} rows: {len(serving)} serving, {len(grid)} grid "
          f"cells over {sorted(granularities)} x {sorted(spreads)} x "
          f"degrees {sorted(degrees)}, {len(rebuild)} rebuild cells; "
          f"judged {judged_spread} spread and {judged_rebuild} rebuild "
          f"headlines")


if __name__ == "__main__":
    main(sys.argv[1])
