"""Validates a bench_lp_solver --json grid dump (BENCH_lp_solver.json).

Checks that the dump is valid JSON with the per-cell schema, that every
cell solved to optimality, and that the dense and revised backends agree
on the objective of every (rows, density) cell — the cross-backend
equivalence half of the smoke_lp_backend_equiv contract, read off the
synthetic grid instead of the CCA pipeline.

Usage: python3 check_lp_grid.py <grid.json>
"""
import json
import sys

REQUIRED = {
    "rows", "cols", "density", "backend", "status", "objective",
    "iterations", "phase1_iterations", "phase2_iterations",
    "factorizations", "fill_nnz", "pricing_candidates", "solve_ms",
}


def main(path):
    with open(path) as f:
        cells = json.load(f)
    if not cells:
        raise SystemExit("grid dump is empty")
    by_cell = {}
    for cell in cells:
        missing = REQUIRED - set(cell)
        if missing:
            raise SystemExit(f"cell {cell} missing keys {sorted(missing)}")
        if cell["status"] != "optimal":
            raise SystemExit(f"cell not optimal: {cell}")
        key = (cell["rows"], cell["density"])
        by_cell.setdefault(key, {})[cell["backend"]] = cell["objective"]
    for key, objectives in sorted(by_cell.items()):
        if {"dense", "revised"} - set(objectives):
            raise SystemExit(f"cell {key} missing a backend: {objectives}")
        dense, revised = objectives["dense"], objectives["revised"]
        if abs(dense - revised) > 1e-6 * (1.0 + abs(dense)):
            raise SystemExit(
                f"cell {key}: backends disagree, dense={dense} "
                f"revised={revised}")
    print(f"{len(cells)} cells, {len(by_cell)} (rows, density) points, "
          "backends agree")


if __name__ == "__main__":
    main(sys.argv[1])
