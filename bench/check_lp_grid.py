"""Validates a bench_lp_solver --json grid dump (BENCH_lp_solver.json).

Checks that the dump is valid JSON with the per-cell schema, that every
cell solved to optimality, and that every configuration of a (rows,
density) point — lane in {dense, revised, dual}, presolve in {on, off} —
agrees on the objective: the cross-configuration equivalence half of the
smoke_lp_backend_equiv / smoke_lp_presolve_equiv contracts, read off the
synthetic grid instead of the CCA pipeline.

Coverage is strict: every (rows, density) point must carry the identical
configuration set (a missing cell fails the check), the revised and dual
lanes must both appear with presolve on AND off, and presolve must remove
a nonzero number of rows+columns somewhere on the grid.

Usage: python3 check_lp_grid.py <grid.json>
"""
import json
import sys

REQUIRED = {
    "rows", "cols", "density", "lane", "presolve", "backend", "status",
    "objective", "iterations", "phase1_iterations", "phase2_iterations",
    "dual_iterations", "warm_iterations", "warm_dual_iterations",
    "presolve_rows_removed", "presolve_cols_removed",
    "factorizations", "fill_nnz", "pricing_candidates", "solve_ms",
}

# Every revised-family configuration must be present at every point; the
# dense lane may be cut off by --grid-dense-limit but must then be absent
# uniformly (the identical-config-set check below).
MANDATORY_CONFIGS = {
    ("revised", "on"), ("revised", "off"), ("dual", "on"), ("dual", "off"),
}


def main(path):
    with open(path) as f:
        cells = json.load(f)
    if not cells:
        raise SystemExit("grid dump is empty")
    by_point = {}
    total_removed = 0
    warm = {"revised": 0, "dual": 0}
    warm_cells = {"revised": 0, "dual": 0}
    for cell in cells:
        missing = REQUIRED - set(cell)
        if missing:
            raise SystemExit(f"cell {cell} missing keys {sorted(missing)}")
        if cell["status"] != "optimal":
            raise SystemExit(f"cell not optimal: {cell}")
        point = (cell["rows"], cell["density"])
        config = (cell["lane"], cell["presolve"])
        configs = by_point.setdefault(point, {})
        if config in configs:
            raise SystemExit(f"point {point} duplicates config {config}")
        configs[config] = cell["objective"]
        if cell["presolve"] == "on":
            total_removed += (cell["presolve_rows_removed"] +
                              cell["presolve_cols_removed"])
        elif cell["presolve_rows_removed"] or cell["presolve_cols_removed"]:
            raise SystemExit(f"presolve-off cell reports reductions: {cell}")
        if cell["lane"] in warm and cell["warm_iterations"] >= 0:
            warm[cell["lane"]] += cell["warm_iterations"]
            warm_cells[cell["lane"]] += 1
    expected = None
    for point, configs in sorted(by_point.items()):
        if expected is None:
            expected = set(configs)
            if not MANDATORY_CONFIGS <= expected:
                raise SystemExit(
                    f"grid lacks mandatory configs: "
                    f"{sorted(MANDATORY_CONFIGS - expected)}")
        if set(configs) != expected:
            raise SystemExit(
                f"point {point} missing cells: {sorted(expected - set(configs))}"
                f" extra: {sorted(set(configs) - expected)}")
        objectives = sorted(configs.items())
        ref_config, ref = objectives[0]
        for config, objective in objectives[1:]:
            if abs(objective - ref) > 1e-6 * (1.0 + abs(ref)):
                raise SystemExit(
                    f"point {point}: configs disagree, {ref_config}={ref} "
                    f"{config}={objective}")
    if total_removed <= 0:
        raise SystemExit("presolve removed nothing anywhere on the grid")
    print(f"{len(cells)} cells, {len(by_point)} (rows, density) points, "
          f"{len(expected)} configs each, objectives agree; "
          f"presolve removed {total_removed} rows+cols; "
          f"warm restarts: revised {warm['revised']} iters over "
          f"{warm_cells['revised']} cells, dual {warm['dual']} iters over "
          f"{warm_cells['dual']} cells")


if __name__ == "__main__":
    main(sys.argv[1])
