# Smoke contract for the fault-tolerance bench: --json and --metrics emit
# valid JSON, and the dumps carry the availability instrumentation the
# fault layer promises. Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DPYTHON=... -DOUT_DIR=... -P <this>
set(metrics_file ${OUT_DIR}/smoke_fault_metrics.json)
set(cells_file ${OUT_DIR}/smoke_fault_cells.json)

execute_process(
  COMMAND ${BENCH} ${TB_ARGS} --threads=2
    --metrics=${metrics_file} --json=${cells_file}
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench failed with exit code ${rc}")
endif()

foreach(file ${metrics_file} ${cells_file})
  execute_process(
    COMMAND ${PYTHON} -m json.tool ${file}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${file} is not valid JSON: ${err}")
  endif()
endforeach()

file(READ ${metrics_file} metrics)
foreach(key
    sim.fault_replay.queries
    sim.fault_replay.retries
    sim.fault_replay.failovers
    sim.fault_replay.availability_pct
    core.recovery.plans
    core.recovery.coverage_restored_pct)
  if(NOT metrics MATCHES "\"${key}\"")
    message(FATAL_ERROR "metrics dump is missing \"${key}\"")
  endif()
endforeach()

file(READ ${cells_file} cells)
foreach(key availability mean_coverage failovers recovery_budget
    coverage_restored)
  if(NOT cells MATCHES "\"${key}\"")
    message(FATAL_ERROR "--json dump is missing \"${key}\"")
  endif()
endforeach()
