# Smoke contract: enabling --metrics changes no stdout byte, and stdout
# is identical across thread counts except the banner's threads= token
# (the registry only observes; it never reorders, draws randomness, or
# interleaves output). Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DOUT_DIR=... -P <this>
function(run_bench out_var)
  execute_process(
    COMMAND ${BENCH} ${TB_ARGS} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench ${ARGN} failed with exit code ${rc}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_bench(plain_t2 --threads=2)
run_bench(metrics_t2 --threads=2 --metrics=${OUT_DIR}/smoke_perturb_t2.json)
run_bench(metrics_t1 --threads=1 --metrics=${OUT_DIR}/smoke_perturb_t1.json)
run_bench(metrics_t8 --threads=8 --metrics=${OUT_DIR}/smoke_perturb_t8.json)

if(NOT plain_t2 STREQUAL metrics_t2)
  message(FATAL_ERROR "--metrics perturbed bench stdout")
endif()

# Cross-thread comparison: only the banner's "threads=N" token may differ.
foreach(var plain_t2 metrics_t1 metrics_t8)
  string(REGEX REPLACE "threads=[0-9]+" "threads=X" ${var}_norm "${${var}}")
endforeach()
if(NOT metrics_t1_norm STREQUAL plain_t2_norm)
  message(FATAL_ERROR "stdout differs between --threads=1 and --threads=2")
endif()
if(NOT metrics_t8_norm STREQUAL plain_t2_norm)
  message(FATAL_ERROR "stdout differs between --threads=8 and --threads=2")
endif()
