"""Validates a bench_load_latency --json dump (BENCH_load_latency.json)
and gates the block-codec decode throughput against a committed baseline.

Two modes:

  python3 check_perf.py <fresh.json>
      Schema check only: the dump has non-empty cells with the
      queries/sec column and a data_plane section with both codec decode
      rates.

  python3 check_perf.py <fresh.json> --baseline <committed.json>
      Schema check plus the regression gate: the fresh block-codec
      decode throughput must be at least (1 - TOLERANCE) of the
      committed baseline's. A missing baseline file SKIPS the gate
      (exit 0 with a notice) so fresh checkouts and new platforms pass
      until a baseline is committed.

The gate only watches block_decode_mbps: wall-clock latency cells vary
with machine load, but a >20% drop in pure decode throughput on the same
machine is a codec regression, which is exactly what this PR's data
plane must not do. Identical binaries still jitter ~25% run-to-run on a
loaded shared box, so regenerate the committed baseline from the SLOWEST
of several runs — the gate then only fires on real regressions, not on a
noisy sample. The schema check additionally enforces the load-invariant
floor decode_speedup >= MIN_SPEEDUP (both codecs are timed in the same
process, so their ratio cancels machine load).
"""
import json
import os
import sys

TOLERANCE = 0.20
MIN_SPEEDUP = 2.0

CELL_KEYS = {
    "arrival_qps", "strategy", "p50_ms", "p99_ms", "max_nic_util",
    "queries_per_sec",
}
DATA_PLANE_KEYS = {
    "codec_default", "block_decode_mbps", "varint_decode_mbps",
    "decode_speedup",
}


def load(path):
    with open(path) as f:
        dump = json.load(f)
    cells = dump.get("cells")
    if not cells:
        raise SystemExit(f"{path}: no cells")
    for cell in cells:
        missing = CELL_KEYS - set(cell)
        if missing:
            raise SystemExit(f"{path}: cell missing keys {sorted(missing)}")
        if cell["queries_per_sec"] < 0:
            raise SystemExit(f"{path}: negative queries/sec: {cell}")
    plane = dump.get("data_plane")
    if plane is None:
        raise SystemExit(f"{path}: no data_plane section")
    missing = DATA_PLANE_KEYS - set(plane)
    if missing:
        raise SystemExit(f"{path}: data_plane missing {sorted(missing)}")
    if plane["block_decode_mbps"] <= 0:
        raise SystemExit(f"{path}: block_decode_mbps not positive")
    if plane["varint_decode_mbps"] <= 0:
        raise SystemExit(f"{path}: varint_decode_mbps not positive")
    if plane["decode_speedup"] < MIN_SPEEDUP:
        raise SystemExit(
            f"{path}: block codec only {plane['decode_speedup']:.2f}x varint "
            f"(floor {MIN_SPEEDUP:.1f}x)")
    return dump


def main(argv):
    fresh_path = argv[1]
    baseline_path = None
    if len(argv) > 2:
        if argv[2] != "--baseline" or len(argv) < 4:
            raise SystemExit(
                "usage: check_perf.py <fresh.json> [--baseline <json>]")
        baseline_path = argv[3]

    fresh = load(fresh_path)
    plane = fresh["data_plane"]
    print(f"{len(fresh['cells'])} cells; block {plane['block_decode_mbps']:.0f}"
          f" MB/s, varint {plane['varint_decode_mbps']:.0f} MB/s, "
          f"speedup {plane['decode_speedup']:.2f}x")

    if baseline_path is None:
        return
    if not os.path.exists(baseline_path):
        print(f"no committed baseline at {baseline_path}; skipping the "
              f"regression gate")
        return
    base = load(baseline_path)["data_plane"]["block_decode_mbps"]
    floor = (1.0 - TOLERANCE) * base
    got = plane["block_decode_mbps"]
    if got < floor:
        raise SystemExit(
            f"block decode regressed: {got:.0f} MB/s < {floor:.0f} MB/s "
            f"({(1 - TOLERANCE) * 100:.0f}% of committed {base:.0f} MB/s)")
    print(f"block decode {got:.0f} MB/s clears the committed floor "
          f"{floor:.0f} MB/s")


if __name__ == "__main__":
    main(sys.argv)
