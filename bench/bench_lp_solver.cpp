// Ablation B — offline computation cost (Sec. 3.1 / Sec. 4.2).
//
// The paper reports O(|T||N|) LP variables/constraints and up to 48-hour
// LPsolve runs at scope 10000. This harness measures, across scopes:
//   * the literal Fig. 4 program size (variables, constraints, nonzeros),
//   * wall-clock time to solve it with our simplex (small scopes only),
//   * wall-clock time of the component-exact solver (all scopes),
// quantifying why the component path makes reproduction tractable.
//
// It then runs a synthetic scaling grid (rows x density x backend) over
// seeded random LPs, reporting per-cell iteration counts, factorization
// work, and wall-clock for the dense tableau and the sparse revised
// simplex. With --json=<path> the grid is also dumped as a JSON array
// (BENCH_lp_solver.json in the build tree) so the solver's perf
// trajectory can be tracked across PRs.
//
//   ./bench_lp_solver [--nodes=10] [--full-limit=25]
//                     [--grid-max-rows=400] [--grid-dense-limit=400]
//                     [--json=<path>] [testbed flags]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/component_solver.hpp"
#include "core/lp_formulation.hpp"
#include "lp/model.hpp"
#include "lp/solution.hpp"
#include "lp/solver.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Seeded random LP for the scaling grid: minimize a mixed-sign objective
/// over `rows` constraints on `cols` nonnegative variables, with nonzero
/// density `density`. Feasible by construction (the rhs is set from a
/// known sparse point x0, so equality rows are satisfiable and <= rows
/// have slack) and bounded for any objective (coefficients are positive
/// and every column appears in at least one <= row, so no recession
/// direction exists). Every fifth row is an equality, which both forces a
/// phase-1 with artificials and makes many cells degenerate (x0 is 70%
/// zeros, so equality rhs values cluster near zero) — the regime that
/// stresses anti-cycling and the ratio-test tie-break.
lp::Model make_grid_lp(int rows, int cols, double density,
                       std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> x0(static_cast<std::size_t>(cols), 0.0);
  for (double& v : x0)
    if (rng.next_double() < 0.3) v = 2.0 * rng.next_double();

  std::vector<std::vector<lp::Term>> row_terms(
      static_cast<std::size_t>(rows));
  std::vector<double> row_activity(static_cast<std::size_t>(rows), 0.0);
  const auto is_equality = [](int i) { return i % 5 == 0; };
  for (int j = 0; j < cols; ++j) {
    bool in_le_row = false;
    for (int i = 0; i < rows; ++i) {
      if (rng.next_double() >= density) continue;
      const double a = 0.1 + rng.next_double();
      row_terms[static_cast<std::size_t>(i)].push_back({j, a});
      row_activity[static_cast<std::size_t>(i)] +=
          a * x0[static_cast<std::size_t>(j)];
      if (!is_equality(i)) in_le_row = true;
    }
    if (!in_le_row) {  // keep the program bounded: pin j to some <= row
      int i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(rows)));
      if (is_equality(i)) i = (i + 1) % rows;
      const double a = 0.1 + rng.next_double();
      row_terms[static_cast<std::size_t>(i)].push_back({j, a});
      row_activity[static_cast<std::size_t>(i)] +=
          a * x0[static_cast<std::size_t>(j)];
    }
  }

  lp::Model model;
  for (int j = 0; j < cols; ++j)
    model.add_variable(0.0, lp::kInfinity, 2.0 * rng.next_double() - 1.0);
  for (int i = 0; i < rows; ++i) {
    if (is_equality(i)) {
      model.add_constraint(lp::Relation::kEqual,
                           row_activity[static_cast<std::size_t>(i)],
                           row_terms[static_cast<std::size_t>(i)]);
    } else {
      model.add_constraint(lp::Relation::kLessEqual,
                           row_activity[static_cast<std::size_t>(i)] +
                               rng.next_double() + 0.1,
                           row_terms[static_cast<std::size_t>(i)]);
    }
  }
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  // Scopes up to this size also solve the literal Fig. 4 LP. Kept tiny by
  // default: the program is so degenerate (thousands of rhs-0 rows) that
  // simplex time explodes with scope — the same wall that cost the
  // paper's authors 48 LPsolve-hours at scope 10000.
  const auto full_limit =
      static_cast<std::size_t>(args.get_int("full-limit", 25));
  // Scaling-grid knobs: largest row count to run, and the largest row
  // count the dense tableau is asked to handle (its O(m*(n+2m)) tableau
  // and full-row pivots dominate quickly).
  const int grid_max_rows =
      static_cast<int>(args.get_int("grid-max-rows", 400));
  const int grid_dense_limit =
      static_cast<int>(args.get_int("grid-dense-limit", 400));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation B — LP sizes and solve times");

  common::Table table({"scope", "pairs |E|", "LP vars", "LP rows",
                       "full-LP solve (s)", "component solve (s)",
                       "components"});
  for (const std::size_t scope : {std::size_t{20}, std::size_t{40},
                                  std::size_t{60}, std::size_t{120},
                                  std::size_t{250}, std::size_t{500},
                                  std::size_t{1000}, std::size_t{2000}}) {
    core::PartialOptimizerConfig opt_cfg;
    opt_cfg.num_nodes = nodes;
    opt_cfg.scope = scope;
    opt_cfg.seed = cfg.seed;
    const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
    const core::CcaInstance& instance = optimizer.scoped_instance();

    const core::LpFormulation formulation(instance);
    const core::LpSizeStats stats = formulation.stats();

    std::string full_time = "(skipped)";
    if (scope <= full_limit) {
      lp::SolverOptions options;
      options.max_iterations = 60000;  // fail fast instead of crawling
      const auto start = std::chrono::steady_clock::now();
      try {
        const core::FractionalPlacement x =
            core::solve_cca_lp(instance, options);
        full_time = common::Table::num(seconds_since(start), 2);
        (void)x;
      } catch (const common::Error&) {
        full_time = "(>60k pivots)";
      }
    }

    const auto start = std::chrono::steady_clock::now();
    const core::FractionalPlacement x =
        core::ComponentLpSolver(cfg.seed).solve(instance);
    const double component_time = seconds_since(start);
    const core::ComponentStructure cs = core::find_components(instance);
    (void)x;

    table.add_row({std::to_string(scope),
                   std::to_string(instance.pairs().size()),
                   std::to_string(stats.num_variables),
                   std::to_string(stats.num_constraints), full_time,
                   common::Table::num(component_time, 3),
                   std::to_string(cs.num_components())});
  }
  table.print(std::cout);
  std::cout << "\n(full-LP = literal Fig. 4 program via our simplex —"
               " the paper's LPsolve route; component = exact contraction"
               " described in component_solver.hpp)\n";

  // ------------------------------------------------------------------
  // Scaling grid: rows x density x lane x presolve over seeded random
  // LPs. Every configuration sees the identical model per cell, so the
  // objective column doubles as a cross-configuration equivalence check
  // (the smoke contracts smoke_lp_backend_equiv / smoke_lp_presolve_equiv
  // and check_lp_grid.py assert it from the JSON dump). Lanes: the dense
  // tableau, the primal-only revised simplex (PR-4 baseline), and the
  // revised simplex with the dual warm-restart lane. Each revised-family
  // cell additionally re-solves an rhs-perturbed sibling warm from the
  // first solve's basis — the hot-restart pattern bench_drift and the
  // RecoveryPlanner live on — reporting the warm iteration count (primal
  // repair vs dual-lane repair at the same cell).
  // ------------------------------------------------------------------
  std::cout << "\nScaling grid — synthetic sparse LPs (cols = 2x rows,"
               " every 5th row an equality)\n\n";
  common::Table grid({"rows", "cols", "density", "lane", "presolve",
                      "status", "iters", "dual it", "warm it", "pre -rows",
                      "pre -cols", "objective", "solve (ms)"});
  std::vector<std::string> json_rows;
  for (const int rows : {50, 100, 200, 400}) {
    if (rows > grid_max_rows) continue;
    for (const double density : {0.02, 0.08}) {
      const int cols = 2 * rows;
      const std::uint64_t cell_seed =
          cfg.seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(rows) * 131 +
          static_cast<std::uint64_t>(density * 1000.0);
      const lp::Model model = make_grid_lp(rows, cols, density, cell_seed);
      // The rhs-perturbed sibling for the warm-restart measurement: every
      // rhs nudged up (deterministically per cell), so the model stays
      // feasible and the old basis typically prices out dual feasible but
      // primal infeasible — the dual lane's home turf.
      lp::Model perturbed;
      {
        common::Rng prng(cell_seed ^ 0xD1B54A32D192ED03ULL);
        for (int j = 0; j < model.num_variables(); ++j)
          perturbed.add_variable(model.lower_bound(j), model.upper_bound(j),
                                 model.objective_coef(j));
        for (int i = 0; i < model.num_constraints(); ++i)
          perturbed.add_constraint(model.relation(i),
                                   model.rhs(i) + 0.05 * prng.next_double(),
                                   model.row_terms(i));
      }
      const struct {
        const char* lane;
        lp::SolverKind kind;
      } lanes[] = {{"dense", lp::SolverKind::kDense},
                   {"revised", lp::SolverKind::kRevised},
                   {"dual", lp::SolverKind::kDual}};
      for (const auto& lane : lanes) {
        if (lane.kind == lp::SolverKind::kDense && rows > grid_dense_limit)
          continue;
        for (const bool presolve : {true, false}) {
          lp::SolverOptions options;
          options.presolve = presolve;
          const lp::Solver solver(lane.kind, options);
          const lp::SolveResult r = solver.solve(model);
          long warm_iters = -1, warm_dual_iters = -1;
          if (lane.kind != lp::SolverKind::kDense && !r.basis.empty()) {
            const lp::SolveResult w = solver.solve(perturbed, &r.basis);
            if (w.optimal()) {
              warm_iters = w.solution.iterations;
              warm_dual_iters = w.stats.dual_iterations;
            }
          }
          grid.add_row({std::to_string(rows), std::to_string(cols),
                        common::Table::num(density, 2), lane.lane,
                        presolve ? "on" : "off",
                        to_string(r.solution.status),
                        std::to_string(r.solution.iterations),
                        std::to_string(r.stats.dual_iterations),
                        std::to_string(warm_iters),
                        std::to_string(r.stats.presolve_rows_removed),
                        std::to_string(r.stats.presolve_cols_removed),
                        common::Table::num(r.solution.objective, 6),
                        common::Table::num(r.stats.total_ms, 2)});
          std::ostringstream row;
          row << "  {\"seed\": " << cfg.seed << ", \"rows\": " << rows
              << ", \"cols\": " << cols << ", \"density\": " << density
              << ", \"lane\": \"" << lane.lane << "\""
              << ", \"presolve\": \"" << (presolve ? "on" : "off") << "\""
              << ", \"backend\": \"" << r.stats.backend << "\""
              << ", \"status\": \"" << to_string(r.solution.status) << "\""
              << ", \"objective\": " << r.solution.objective
              << ", \"iterations\": " << r.solution.iterations
              << ", \"phase1_iterations\": " << r.stats.phase1_iterations
              << ", \"phase2_iterations\": " << r.stats.phase2_iterations
              << ", \"dual_iterations\": " << r.stats.dual_iterations
              << ", \"warm_iterations\": " << warm_iters
              << ", \"warm_dual_iterations\": " << warm_dual_iters
              << ", \"presolve_rows_removed\": "
              << r.stats.presolve_rows_removed
              << ", \"presolve_cols_removed\": "
              << r.stats.presolve_cols_removed
              << ", \"factorizations\": " << r.stats.factorizations
              << ", \"fill_nnz\": " << r.stats.factor_fill_nnz
              << ", \"pricing_candidates\": " << r.stats.pricing_candidates
              << ", \"solve_ms\": " << r.stats.total_ms << "}";
          json_rows.push_back(row.str());
        }
      }
    }
  }
  grid.print(std::cout);
  std::cout << "\n(identical model per (rows, density) cell across every"
               " lane x presolve configuration; 'warm it' is the total"
               " iteration count of re-solving an rhs-perturbed sibling"
               " from the cell's optimal basis — compare the revised"
               " lane's phase-1 rebuild against the dual lane's repair"
               " pivots at the same cell)\n";

  if (!cfg.json_path.empty()) {
    std::ofstream out(cfg.json_path);
    CCA_CHECK_MSG(out.good(), "cannot write JSON log to " << cfg.json_path);
    out << "[\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i)
      out << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    out << "]\n";
    std::cout << "\nwrote " << json_rows.size() << " cells to "
              << cfg.json_path << "\n";
  }

  bench::write_metrics(cfg);
  return 0;
}
