// Ablation B — offline computation cost (Sec. 3.1 / Sec. 4.2).
//
// The paper reports O(|T||N|) LP variables/constraints and up to 48-hour
// LPsolve runs at scope 10000. This harness measures, across scopes:
//   * the literal Fig. 4 program size (variables, constraints, nonzeros),
//   * wall-clock time to solve it with our simplex (small scopes only),
//   * wall-clock time of the component-exact solver (all scopes),
// quantifying why the component path makes reproduction tractable.
//
//   ./bench_lp_solver [--nodes=10] [--full-limit=25] [testbed flags]
#include <chrono>
#include <iostream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/component_solver.hpp"
#include "lp/solution.hpp"
#include "core/lp_formulation.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  // Scopes up to this size also solve the literal Fig. 4 LP. Kept tiny by
  // default: the program is so degenerate (thousands of rhs-0 rows) that
  // simplex time explodes with scope — the same wall that cost the
  // paper's authors 48 LPsolve-hours at scope 10000.
  const auto full_limit =
      static_cast<std::size_t>(args.get_int("full-limit", 25));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation B — LP sizes and solve times");

  common::Table table({"scope", "pairs |E|", "LP vars", "LP rows",
                       "full-LP solve (s)", "component solve (s)",
                       "components"});
  for (const std::size_t scope : {std::size_t{20}, std::size_t{40},
                                  std::size_t{60}, std::size_t{120},
                                  std::size_t{250}, std::size_t{500},
                                  std::size_t{1000}, std::size_t{2000}}) {
    core::PartialOptimizerConfig opt_cfg;
    opt_cfg.num_nodes = nodes;
    opt_cfg.scope = scope;
    opt_cfg.seed = cfg.seed;
    const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
    const core::CcaInstance& instance = optimizer.scoped_instance();

    const core::LpFormulation formulation(instance);
    const core::LpSizeStats stats = formulation.stats();

    std::string full_time = "(skipped)";
    if (scope <= full_limit) {
      lp::SolverOptions options;
      options.max_iterations = 60000;  // fail fast instead of crawling
      const auto start = std::chrono::steady_clock::now();
      try {
        const core::FractionalPlacement x =
            core::solve_cca_lp(instance, options);
        full_time = common::Table::num(seconds_since(start), 2);
        (void)x;
      } catch (const common::Error&) {
        full_time = "(>60k pivots)";
      }
    }

    const auto start = std::chrono::steady_clock::now();
    const core::FractionalPlacement x =
        core::ComponentLpSolver(cfg.seed).solve(instance);
    const double component_time = seconds_since(start);
    const core::ComponentStructure cs = core::find_components(instance);
    (void)x;

    table.add_row({std::to_string(scope),
                   std::to_string(instance.pairs().size()),
                   std::to_string(stats.num_variables),
                   std::to_string(stats.num_constraints), full_time,
                   common::Table::num(component_time, 3),
                   std::to_string(cs.num_components())});
  }
  table.print(std::cout);
  std::cout << "\n(full-LP = literal Fig. 4 program via our simplex —"
               " the paper's LPsolve route; component = exact contraction"
               " described in component_solver.hpp)\n";
  bench::write_metrics(cfg);
  return 0;
}
