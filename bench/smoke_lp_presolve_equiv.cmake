# Smoke contract: presolve and the dual warm-restart lane are pure
# accelerators. A bench's stdout (placements, costs, balance) is
# byte-identical across --lp-presolve={on,off} crossed with every
# --lp-backend lane (auto / revised / dual / auto-dual), and across
# --threads={1,2,8} with the new machinery fully enabled — presolve
# reductions, crushed/postsolved warm-start bases, and dual-lane repairs
# may change iteration counts, never answers. Also checks the strict
# flag-value contract: a bad value for either flag is a hard error
# naming the flag and suggesting the closest accepted value. Driven by
# ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -P <this>
function(run_bench out_var)
  execute_process(
    COMMAND ${BENCH} ${TB_ARGS} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench ${ARGN} failed with exit code ${rc}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_bench(reference --threads=2)

# Presolve x lane grid at a fixed thread count.
set(variants "")
foreach(presolve on off)
  foreach(backend auto revised dual auto-dual)
    run_bench(got --threads=2 --lp-presolve=${presolve}
      --lp-backend=${backend})
    if(NOT got STREQUAL reference)
      message(FATAL_ERROR "--lp-presolve=${presolve} --lp-backend=${backend}"
        " perturbed bench stdout")
    endif()
  endforeach()
endforeach()

# Thread sweep with the full new machinery on (the banner names the pool
# size, so compare per-thread-count pairs: defaults vs presolve+dual).
foreach(threads 1 2 8)
  run_bench(plain --threads=${threads})
  run_bench(tuned --threads=${threads} --lp-presolve=on --lp-backend=dual)
  if(NOT tuned STREQUAL plain)
    message(FATAL_ERROR
      "--lp-presolve=on --lp-backend=dual perturbed bench stdout"
      " at --threads=${threads}")
  endif()
endforeach()

# Strict parse: bad values are hard errors that name the flag and
# suggest the closest accepted value.
function(expect_reject flag expect_hint)
  execute_process(
    COMMAND ${BENCH} ${TB_ARGS} ${flag}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "bench accepted bad flag value ${flag}")
  endif()
  string(REGEX REPLACE "=.*" "" flag_name "${flag}")
  if(NOT err MATCHES "${flag_name}")
    message(FATAL_ERROR
      "rejection of ${flag} does not name the flag: ${err}")
  endif()
  if(NOT err MATCHES "did you mean '${expect_hint}'")
    message(FATAL_ERROR
      "rejection of ${flag} does not suggest '${expect_hint}': ${err}")
  endif()
endfunction()

expect_reject(--lp-presolve=onn on)
expect_reject(--lp-backend=duel dual)
