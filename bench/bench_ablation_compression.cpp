// Ablation E — index-size model: raw 8-byte postings (the paper's
// prototype) vs delta-varint compression over dense ordinals (production
// practice).
//
// Compression changes s(i), w(i,j), and the shipped bytes themselves, so
// it can change both the placement and the measured savings. This harness
// runs the full pipeline under each size model (optimizer input AND
// replay accounting use the same model) and reports compression ratio,
// scope overlap between the two importance rankings, and the savings of
// each strategy under each model.
//
//   ./bench_ablation_compression [--nodes=10] [--scope=1000] [testbed flags]
#include <algorithm>
#include <iostream>
#include <set>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "search/compression.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

struct ModelRun {
  std::string name;
  std::vector<std::uint64_t> sizes;
};

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation E — raw vs compressed index-size model");

  const std::vector<std::uint64_t> compressed =
      search::compressed_index_sizes(tb.index);
  std::uint64_t raw_total = 0, compressed_total = 0;
  for (std::size_t k = 0; k < tb.sizes.size(); ++k) {
    raw_total += tb.sizes[k];
    compressed_total += compressed[k];
  }
  std::cout << "compression: " << raw_total / 1024 << " KiB raw -> "
            << compressed_total / 1024 << " KiB ("
            << common::Table::num(
                   static_cast<double>(raw_total) /
                       static_cast<double>(std::max<std::uint64_t>(
                           compressed_total, 1)),
                   2)
            << "x)\n\n";

  const std::vector<ModelRun> models = {{"raw-8B", tb.sizes},
                                        {"varint-delta", compressed}};

  common::Table table({"size model", "strategy", "KiB moved", "norm. cost",
                       "storage imbalance"});
  std::vector<std::set<trace::KeywordId>> scopes;
  for (const ModelRun& model : models) {
    const core::PartialOptimizerConfig opt_cfg =
        tb.optimizer_config(nodes, scope);
    const core::PartialOptimizer optimizer(tb.january, model.sizes, opt_cfg);

    double total_bytes = 0.0;
    for (std::uint64_t s : model.sizes)
      total_bytes += static_cast<double>(s);

    std::uint64_t random_bytes = 0;
    for (const std::string_view strategy :
         {"random-hash", "greedy",
          "lprr"}) {
      const core::PlacementPlan plan = optimizer.run(strategy);
      if (strategy == "lprr")
        scopes.emplace_back(plan.scope.begin(), plan.scope.end());
      sim::Cluster cluster(nodes,
                           opt_cfg.capacity_slack * total_bytes / nodes);
      cluster.install_placement(tb.build_map(plan.keyword_to_node, nodes),
                                model.sizes);
      const sim::ReplayStats stats =
          sim::replay_trace(cluster, tb.index, tb.february,
                            sim::OperationKind::kIntersection, model.sizes);
      if (strategy == "random-hash")
        random_bytes = stats.total_bytes;
      table.add_row(
          {model.name, std::string(strategy),
           common::Table::num(static_cast<double>(stats.total_bytes) / 1024,
                              1),
           common::Table::num(static_cast<double>(stats.total_bytes) /
                                  static_cast<double>(std::max<std::uint64_t>(
                                      random_bytes, 1)),
                              3),
           common::Table::num(stats.storage_imbalance, 2)});
    }
  }
  table.print(std::cout);

  if (scopes.size() == 2) {
    std::vector<trace::KeywordId> common_kw;
    std::set_intersection(scopes[0].begin(), scopes[0].end(),
                          scopes[1].begin(), scopes[1].end(),
                          std::back_inserter(common_kw));
    std::cout << "\nscope overlap between size models: " << common_kw.size()
              << "/" << scope << " keywords ("
              << common::Table::pct(static_cast<double>(common_kw.size()) /
                                    static_cast<double>(scope))
              << ")\n";
  }
  std::cout << "(normalized within each size model to its own random-hash"
               " baseline; compression shrinks w(i,j) asymmetrically — big"
               " lists compress better — which reshuffles the importance"
               " ranking's tail)\n";
  bench::write_metrics(cfg);
  return 0;
}
