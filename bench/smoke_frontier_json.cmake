# Smoke contract: bench_strategy_frontier's --json dump is valid JSON
# with the per-cell schema, covers the full (qlen x strategy) grid, and
# shows the hypergraph headline — on long-query workloads (mean >= 4)
# the hypergraph partitioner strictly beats multilevel and greedy on the
# rate-weighted lambda-1 objective at comparable capacity feasibility.
# Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DPYTHON=... -DCHECKER=...
#         -DOUT_DIR=... -P <this>
set(grid_file ${OUT_DIR}/smoke_frontier_grid.json)

execute_process(
  COMMAND ${BENCH} ${TB_ARGS} --json=${grid_file}
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_strategy_frontier failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${grid_file}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "frontier grid contract failed: ${out}${err}")
endif()
message(STATUS "${out}")
