# Smoke contract: with an empty churn script the placement-service path
# degenerates to exactly one offline replay — bench_churn stdout is
# byte-identical between --service=on and --service=off, and identical
# across thread counts except the banner's threads= token. Driven by
# ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DOUT_DIR=... -P <this>
function(run_bench out_var)
  execute_process(
    COMMAND ${BENCH} ${TB_ARGS} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench ${ARGN} failed with exit code ${rc}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_bench(offline_t2 --threads=2 --service=off)
run_bench(service_t2 --threads=2 --service=on)
run_bench(service_t1 --threads=1 --service=on)
run_bench(service_t8 --threads=8 --service=on)

if(NOT service_t2 STREQUAL offline_t2)
  message(FATAL_ERROR
    "--service=on with no churn perturbed bench_churn stdout")
endif()

# Cross-thread comparison: only the banner's "threads=N" token may differ.
foreach(var offline_t2 service_t1 service_t8)
  string(REGEX REPLACE "threads=[0-9]+" "threads=X" ${var}_norm "${${var}}")
endforeach()
if(NOT service_t1_norm STREQUAL offline_t2_norm)
  message(FATAL_ERROR "stdout differs between --threads=1 and --threads=2")
endif()
if(NOT service_t8_norm STREQUAL offline_t2_norm)
  message(FATAL_ERROR "stdout differs between --threads=8 and --threads=2")
endif()
