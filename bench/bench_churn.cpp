// Churn — epoch swaps under membership change (the serving-side replay).
//
// The offline figures freeze one placement; an operator's cluster grows
// and shrinks. This harness replays the evaluation trace through the
// placement service (sim/placement_service.hpp) while a --churn script
// adds and removes nodes, and reports what every epoch swap cost: data
// migrated (objects and index bytes), the hash-tail movement fraction,
// and queries that touched a moved keyword in the swap's window. The
// grid crosses BOTH hash tails with every strategy — the headline is the
// "tail moved" column: a single-node add moves ~1/(N+1) of the jump tail
// but ~N/(N+1) of the md5 tail (Lamping & Veach vs mod-N rehash).
//
//   ./bench_churn [--nodes=10] [--scope=1000] [--qps=1000]
//                 [--strategies=random-hash,lprr] [--service={on,off}]
//                 [--migration-budget=0.25] [--churn=add:t,n;...]
//                 [testbed flags]
//
// Rebuild lanes: "random-hash" rebalances by the tail rule alone
// (PlacementMap::rebalanced); every other strategy re-optimizes at the
// new cluster size through the bounded-churn IncrementalOptimizer (LPRR
// target, --migration-budget byte budget, bench-wide LP warm-start
// cache) and publishes the successor epoch carrying the new pins.
//
// --service=off bypasses the service for a plain offline replay (churn
// scripts are rejected there). With an empty script --service=on must
// produce byte-identical stdout — the smoke_service_no_churn contract.
// The grid sweeps both tails itself; the testbed's --hash-tail flag only
// selects the epoch-0 default elsewhere and has no effect here.
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/migration.hpp"
#include "lp/basis.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

/// Per-cell --json rows (the churn analogue of bench::JsonLog — the cells
/// here carry transitions, which the shared writer has no schema for).
class ChurnJsonLog {
 public:
  explicit ChurnJsonLog(std::string path) : path_(std::move(path)) {}

  void add(const bench::TestbedConfig& cfg, core::HashTail tail,
           const std::string& strategy, int nodes, std::size_t scope,
           const sim::ServiceReplayStats& stats, double wall_ms) {
    if (path_.empty()) return;
    std::ostringstream row;
    row << "  {\"seed\": " << cfg.seed << ", \"threads\": " << cfg.threads
        << ", \"tail\": \"" << core::hash_tail_name(tail) << "\""
        << ", \"strategy\": \"" << strategy << "\""
        << ", \"nodes\": " << nodes << ", \"scope\": " << scope
        << ", \"queries\": " << stats.base.queries
        << ", \"total_bytes\": " << stats.base.total_bytes
        << ", \"mean_bytes_per_query\": " << stats.base.mean_bytes_per_query
        << ", \"p99_bytes_per_query\": " << stats.base.p99_bytes_per_query
        << ", \"local_queries\": " << stats.base.local_queries
        << ", \"final_epoch\": " << stats.final_epoch
        << ", \"final_nodes\": " << stats.final_num_nodes
        << ", \"wall_ms\": " << wall_ms << ", \"transitions\": [";
    for (std::size_t i = 0; i < stats.transitions.size(); ++i) {
      const sim::EpochTransition& t = stats.transitions[i];
      row << (i ? ", " : "") << "{\"from_epoch\": " << t.from_epoch
          << ", \"to_epoch\": " << t.to_epoch
          << ", \"time_ms\": " << t.time_ms
          << ", \"nodes_before\": " << t.nodes_before
          << ", \"nodes_after\": " << t.nodes_after
          << ", \"moved_objects\": " << t.moved_objects
          << ", \"moved_bytes\": " << t.moved_bytes
          << ", \"tail_objects\": " << t.tail_objects
          << ", \"moved_tail_objects\": " << t.moved_tail_objects
          << ", \"disrupted_queries\": " << t.disrupted_queries << "}";
    }
    row << "]}";
    rows_.push_back(row.str());
  }

  void write() const {
    if (path_.empty() || rows_.empty()) return;
    std::ofstream out(path_);
    CCA_CHECK_MSG(out.good(), "cannot write JSON log to " << path_);
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    out << "]\n";
    std::cout << "\nwrote " << rows_.size() << " cells to " << path_ << "\n";
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  const double qps = args.get_double("qps", 1000.0);
  const double budget = args.get_double("migration-budget", 0.25);
  const std::vector<std::string> strategies = core::parse_strategy_list(
      args.get_string("strategies", "random-hash,lprr"));
  const std::string service_flag = args.get_string("service", "on");
  if (service_flag != "on" && service_flag != "off") {
    const std::string hint =
        common::suggest_value(service_flag, {"on", "off"});
    CCA_CHECK_MSG(false, "--service must be one of 'off', 'on', got '"
                             << service_flag << "'"
                             << (hint.empty()
                                     ? std::string()
                                     : " (did you mean '" + hint + "'?)"));
  }
  const bool service_on = service_flag == "on";
  args.reject_unused();
  CCA_CHECK_MSG(service_on || cfg.churn.empty(),
                "--service=off replays offline and cannot apply a --churn "
                "script; drop one of the two");
  CCA_CHECK_MSG(budget >= 0.0 && budget <= 1.0,
                "--migration-budget must be in [0, 1], got " << budget);

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Churn — epoch swaps under membership change");
  std::cout << "churn script: " << cfg.churn.size() << " events, arrivals "
            << qps << " qps, migration budget "
            << static_cast<int>(budget * 100) << "%\n\n";

  // One LP warm-start cache for every rebuild in the run: successive
  // re-optimizations at the same cluster size restart from the previous
  // optimal basis. Results are identical either way (lp/basis.hpp).
  lp::WarmStartCache rebuild_cache;
  ChurnJsonLog json(cfg.json_path);

  common::Table table({"tail", "strategy", "mean B/q", "p99 B/q", "local",
                       "swaps", "moved objs", "moved MiB", "tail moved",
                       "disrupted"});
  for (const core::HashTail tail : {core::HashTail::kMd5,
                                    core::HashTail::kJump}) {
    for (const std::string& strategy : strategies) {
      const auto start = std::chrono::steady_clock::now();

      core::PartialOptimizerConfig opt_cfg = tb.optimizer_config(nodes,
                                                                 scope);
      opt_cfg.hash_tail = tail;
      const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
      const core::PlacementPlan plan = optimizer.run(strategy);

      core::PlacementMapConfig map_cfg;
      map_cfg.num_nodes = nodes;
      map_cfg.hash_tail = tail;
      const auto epoch0 = std::make_shared<const core::PlacementMap>(
          core::PlacementMap::build(plan.keyword_to_node, map_cfg));

      sim::ServiceReplayStats stats;
      if (service_on) {
        sim::ServiceReplayConfig service_cfg;
        service_cfg.arrival_rate_qps = qps;
        service_cfg.arrival_seed = cfg.seed;
        // Optimized strategies rebuild through the bounded-churn lane;
        // "random-hash" keeps the default pure tail rebalance. Per-size
        // optimizers are cached so repeated events at one size share the
        // mined pipeline. The importance ranking (and so the scope) does
        // not depend on the cluster size, so the epoch-0 scope indexes
        // the re-optimized instance's objects at every size.
        std::map<int, std::unique_ptr<core::PartialOptimizer>> per_size;
        if (strategy != "random-hash") {
          service_cfg.rebuild = [&](const core::PlacementMap& current,
                                    const sim::ChurnEvent& event) {
            const int next = event.kind == sim::ChurnEvent::Kind::kAdd
                                 ? current.num_nodes() + 1
                                 : current.num_nodes() - 1;
            auto& opt = per_size[next];
            if (!opt) {
              core::PartialOptimizerConfig next_cfg =
                  tb.optimizer_config(next, scope);
              next_cfg.hash_tail = tail;
              opt = std::make_unique<core::PartialOptimizer>(
                  tb.january, tb.sizes, next_cfg);
            }
            // Start from the serving placement; scope keywords stranded
            // on a retiring node are evacuated to their tail node first
            // (forced moves, not charged against the budget).
            core::Placement current_scope(plan.scope.size());
            for (std::size_t pos = 0; pos < plan.scope.size(); ++pos) {
              int node = current.primary(plan.scope[pos]);
              if (node >= next)
                node = core::tail_node(tail, plan.scope[pos], next);
              current_scope[pos] = node;
            }
            core::IncrementalConfig inc;
            inc.migration_budget_fraction = budget;
            inc.rounding.trials = 16;
            inc.seed = cfg.seed;
            inc.warm_cache = &rebuild_cache;
            const core::IncrementalResult res =
                core::IncrementalOptimizer(inc).reoptimize(
                    opt->scoped_instance(), current_scope);
            // Successor plan: tail rule at the new size, re-optimized
            // scope pinned on top.
            std::vector<int> keyword_to_node(tb.sizes.size());
            for (trace::KeywordId k = 0; k < keyword_to_node.size(); ++k)
              keyword_to_node[k] = core::tail_node(tail, k, next);
            for (std::size_t pos = 0; pos < plan.scope.size(); ++pos)
              keyword_to_node[plan.scope[pos]] = res.placement[pos];
            core::PlacementMapConfig next_map;
            next_map.num_nodes = next;
            next_map.degree = current.degree();
            next_map.hash_tail = tail;
            next_map.epoch = current.epoch() + 1;
            return std::make_shared<const core::PlacementMap>(
                core::PlacementMap::build(keyword_to_node, next_map));
          };
        }
        sim::PlacementService service(epoch0);
        stats = sim::replay_trace_with_service(service, tb.index,
                                               tb.february, cfg.churn,
                                               service_cfg);
      } else {
        sim::Cluster cluster(nodes, 2.0 * tb.total_index_bytes / nodes);
        cluster.install_placement(epoch0, tb.sizes);
        stats.base = sim::replay_trace(cluster, tb.index, tb.february);
        stats.final_num_nodes = nodes;
      }
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();

      std::size_t moved_objects = 0, tail_objects = 0, moved_tail = 0;
      std::uint64_t moved_bytes = 0, disrupted = 0;
      for (const sim::EpochTransition& t : stats.transitions) {
        moved_objects += t.moved_objects;
        moved_bytes += t.moved_bytes;
        tail_objects += t.tail_objects;
        moved_tail += t.moved_tail_objects;
        disrupted += t.disrupted_queries;
      }
      const bool churned = !stats.transitions.empty();
      table.add_row(
          {core::hash_tail_name(tail), strategy,
           common::Table::num(stats.base.mean_bytes_per_query, 1),
           common::Table::num(stats.base.p99_bytes_per_query, 1),
           common::Table::pct(static_cast<double>(stats.base.local_queries) /
                              static_cast<double>(stats.base.queries)),
           churned ? std::to_string(stats.transitions.size()) : "-",
           churned ? std::to_string(moved_objects) : "-",
           churned ? common::Table::num(
                         static_cast<double>(moved_bytes) / (1024.0 * 1024.0),
                         2)
                   : "-",
           churned && tail_objects > 0
               ? common::Table::pct(static_cast<double>(moved_tail) /
                                    static_cast<double>(tail_objects))
               : "-",
           churned ? std::to_string(disrupted) : "-"});
      json.add(cfg, tail, strategy, nodes, scope, stats, wall_ms);
    }
  }
  bench::print_table(table, cfg);
  std::cout << "\n(\"tail moved\" is the fraction of hash-ruled keywords "
               "whose node changed across all swaps: jump keeps a "
               "single-node add near 1/N, md5 reshuffles nearly all of "
               "it. \"disrupted\" counts queries touching a moved keyword "
               "in the swap's window)\n";
  json.write();
  bench::write_metrics(cfg);
  return 0;
}
