// Figure 5 reproduction: dominance of the most important keywords in
// cumulative index size and cumulative inter-keyword communication cost.
//
// The paper shows that a small keyword prefix (by importance rank) covers
// most of the communication cost and a large share of total index bytes —
// the justification for important-object partial optimization (Sec. 4.2).
//
//   ./bench_fig5_importance [--vocab=N] [--docs=N] [--queries=N] [--seed=N]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/correlation.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Figure 5 — dominance of important keywords");

  const auto pairs = core::build_pair_weights(
      tb.january, tb.sizes, core::OperationModel::kSmallestPair);
  const auto ranking = core::importance_ranking(pairs, tb.sizes);
  const auto curve = core::dominance_curve(ranking, pairs, tb.sizes, 20);

  common::Table table({"top keywords", "share of vocab",
                       "cumulative comm cost", "cumulative index size"});
  for (const core::DominancePoint& pt : curve) {
    table.add_row(
        {std::to_string(pt.rank),
         common::Table::pct(static_cast<double>(pt.rank) /
                            static_cast<double>(ranking.size())),
         common::Table::pct(pt.cumulative_cost_fraction),
         common::Table::pct(pt.cumulative_size_fraction)});
  }
  bench::print_table(table, cfg);

  // Paper's qualitative claim: a small prefix covers most of the cost.
  for (const core::DominancePoint& pt : curve) {
    if (pt.rank * 10 >= ranking.size()) {  // first point at >= 10% of vocab
      std::cout << "\nat " << pt.rank << " keywords ("
                << common::Table::pct(static_cast<double>(pt.rank) /
                                      static_cast<double>(ranking.size()))
                << " of vocabulary): "
                << common::Table::pct(pt.cumulative_cost_fraction)
                << " of communication cost, "
                << common::Table::pct(pt.cumulative_size_fraction)
                << " of index bytes\n";
      break;
    }
  }
  bench::write_metrics(cfg);
  return 0;
}
