// Ablation P — the strategy quality-vs-time frontier across query-length
// distributions.
//
// The paper's pipeline collapses every query to pairwise correlations, an
// approximation that is exact for 2-keyword queries and degrades as
// operations grow. This harness sweeps the workload's mean query length
// and races every registered strategy on the SAME pipeline, reporting the
// metric the pairwise view cannot see: the rate-weighted
// connectivity-minus-one cost (distinct nodes a query touches, minus one)
// replayed over the held-out February trace. Strategy wall time goes to
// the --json dump, giving the quality-vs-time frontier per distribution.
//
//   ./bench_strategy_frontier [--nodes=10] [--scope=1000]
//       [--qlens=2,2.54,4,6]
//       [--strategies=random-hash,greedy,multilevel,lprr,hypergraph]
//       [--json=<path>] [testbed flags]
//
// --strategies resolves through core::StrategyRegistry. stdout carries
// only deterministic quantities (bit-identical for any --threads, with or
// without --metrics); wall-clock lives in the JSON cells only. The smoke
// tier drives bench/check_frontier_grid.py over the dump: full
// (qlen x strategy) coverage, and on long-query workloads (mean >= 4)
// "hypergraph" must strictly beat both "multilevel" and "greedy" on the
// lambda objective at comparable capacity feasibility.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/hypergraph.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

/// One (query-length, strategy) cell of the frontier grid.
struct FrontierCell {
  double qlen = 0.0;            // configured mean query length
  double realized_qlen = 0.0;   // the trace's actual mean
  std::string strategy;
  double lambda_feb = 0.0;      // mean (distinct nodes - 1) per Feb query
  double lambda_scoped = 0.0;   // scoped connectivity cost, normalized
  double pair_cost_norm = 0.0;  // scoped pairwise objective, normalized
  double max_load_factor = 0.0;
  bool feasible = false;
  double wall_ms = 0.0;         // strategy run only (JSON lane)
};

std::vector<double> parse_qlens(const std::string& csv) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      const double qlen = std::stod(item);
      CCA_CHECK_MSG(qlen >= 1.0 && qlen <= 32.0,
                    "--qlens entry " << item << " outside [1, 32]");
      out.push_back(qlen);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  CCA_CHECK_MSG(!out.empty(), "--qlens list is empty");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  const std::vector<double> qlens =
      parse_qlens(args.get_string("qlens", "2,2.54,4,6"));
  const std::vector<std::string> strategies =
      core::parse_strategy_list(args.get_string(
          "strategies", "random-hash,greedy,multilevel,lprr,hypergraph"));
  args.reject_unused();

  // The corpus/index is query-length independent: build it once through
  // the shared testbed, then redraw the traces per mean length.
  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner(
      "Ablation P — strategy frontier across query-length distributions");
  std::cout << "lambda-1/query = distinct nodes a February query touches,"
               " minus one (the whole-operation cost the pairwise collapse"
               " approximates)\n\n";

  // One row of cells per query length, grid cells evaluated concurrently.
  // parallel_map's index-ordered join keeps stdout deterministic.
  const auto rows = common::parallel_map(
      qlens.size(), [&](std::size_t qi) -> std::vector<FrontierCell> {
        const double qlen = qlens[qi];
        trace::WorkloadConfig wcfg;
        wcfg.vocabulary_size = cfg.vocabulary;
        wcfg.num_topics = cfg.topics;
        wcfg.topic_size = cfg.topic_size;
        wcfg.topic_coherence = cfg.coherence;
        wcfg.disjoint_topics = cfg.disjoint_topics;
        wcfg.mean_query_length = qlen;
        wcfg.seed = cfg.seed;
        const trace::WorkloadModel model(wcfg);
        const trace::QueryTrace january =
            model.generate(cfg.queries, cfg.seed * 7919 + 1);
        const trace::QueryTrace february =
            model.generate(cfg.queries, cfg.seed * 104729 + 2);
        const core::PartialOptimizer optimizer(
            january, tb.sizes, tb.optimizer_config(nodes, scope));
        const core::CcaInstance& scoped = optimizer.scoped_instance();
        const double lambda_total = scoped.total_connectivity_cost();

        std::vector<FrontierCell> cells;
        for (const std::string& strategy : strategies) {
          const auto start = std::chrono::steady_clock::now();
          const core::PlacementPlan plan = optimizer.run(strategy);
          FrontierCell cell;
          cell.wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
          cell.qlen = qlen;
          cell.realized_qlen = january.mean_query_length();
          cell.strategy = strategy;
          cell.lambda_feb =
              core::trace_lambda_cost(february, plan.keyword_to_node);
          core::Placement scoped_placement(
              static_cast<std::size_t>(scoped.num_objects()));
          for (std::size_t pos = 0; pos < plan.scope.size(); ++pos)
            scoped_placement[pos] = plan.keyword_to_node[plan.scope[pos]];
          cell.lambda_scoped =
              lambda_total > 0.0
                  ? scoped.connectivity_cost(scoped_placement) / lambda_total
                  : 0.0;
          cell.pair_cost_norm = plan.scoped_report.normalized_cost;
          cell.max_load_factor = plan.max_load_factor;
          cell.feasible = plan.scoped_report.feasible;
          cells.push_back(std::move(cell));
        }
        return cells;
      });

  common::Table table({"mean qlen", "realized", "strategy",
                       "lambda-1/query (Feb)", "scoped lambda norm",
                       "pair cost norm", "max load"});
  std::vector<std::string> json_cells;
  for (const std::vector<FrontierCell>& row : rows) {
    for (const FrontierCell& cell : row) {
      table.add_row({common::Table::num(cell.qlen, 2),
                     common::Table::num(cell.realized_qlen, 2), cell.strategy,
                     common::Table::num(cell.lambda_feb, 4),
                     common::Table::num(cell.lambda_scoped, 4),
                     common::Table::num(cell.pair_cost_norm, 4),
                     common::Table::num(cell.max_load_factor, 3)});
      if (!cfg.json_path.empty()) {
        std::ostringstream out;
        out << "    {\"seed\": " << cfg.seed
            << ", \"threads\": " << cfg.threads << ", \"nodes\": " << nodes
            << ", \"scope\": " << scope << ", \"qlen\": " << cell.qlen
            << ", \"realized_qlen\": " << cell.realized_qlen
            << ", \"strategy\": \"" << cell.strategy << "\""
            << ", \"lambda_feb\": " << cell.lambda_feb
            << ", \"lambda_scoped_norm\": " << cell.lambda_scoped
            << ", \"pair_cost_norm\": " << cell.pair_cost_norm
            << ", \"max_load_factor\": " << cell.max_load_factor
            << ", \"feasible\": " << (cell.feasible ? "true" : "false")
            << ", \"wall_ms\": " << cell.wall_ms << "}";
        json_cells.push_back(out.str());
      }
    }
  }
  bench::print_table(table, cfg);
  std::cout << "\n(at qlen ~2 every strategy optimizes what it sees; past"
               " qlen 4 the pairwise approximation thins out and only the"
               " hyperedge view still tracks whole operations)\n";

  if (!cfg.json_path.empty()) {
    std::ofstream out(cfg.json_path);
    CCA_CHECK_MSG(out.good(), "cannot write JSON log to " << cfg.json_path);
    out << "{\n  \"cells\": [\n";
    for (std::size_t i = 0; i < json_cells.size(); ++i)
      out << json_cells[i] << (i + 1 < json_cells.size() ? ",\n" : "\n");
    out << "  ]\n}\n";
    std::cout << "\nwrote " << json_cells.size() << " cells to "
              << cfg.json_path << "\n";
  }

  bench::write_metrics(cfg);
  return 0;
}
