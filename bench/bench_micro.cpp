// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: MD5 hashing, Zipf sampling, posting-list intersection,
// pair counting, LP solves, and randomized rounding.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "core/component_solver.hpp"
#include "core/lp_formulation.hpp"
#include "core/placement_map.hpp"
#include "core/rounding.hpp"
#include "hash/md5.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/presolve.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/solver.hpp"
#include "search/block_postings.hpp"
#include "search/compression.hpp"
#include "search/inverted_index.hpp"
#include "search/query_engine.hpp"
#include "trace/documents.hpp"
#include "trace/pair_stats.hpp"
#include "trace/workload.hpp"

namespace {

using namespace cca;

void BM_Md5Digest64(benchmark::State& state) {
  const std::string input(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Md5::digest64(input));
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Digest64)->Arg(16)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ZipfSample(benchmark::State& state) {
  const common::ZipfSampler zipf(
      static_cast<std::size_t>(state.range(0)), 1.0);
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_PostingIntersection(benchmark::State& state) {
  common::Rng rng(7);
  std::vector<std::uint64_t> a, b;
  for (long i = 0; i < state.range(0); ++i) a.push_back(rng() % 1000000);
  for (long i = 0; i < state.range(1); ++i) b.push_back(rng() % 1000000);
  const search::PostingList list_a(std::move(a)), list_b(std::move(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::intersect(list_a, list_b));
  }
}
BENCHMARK(BM_PostingIntersection)
    ->Args({1000, 1000})     // merge path
    ->Args({100, 100000});   // galloping path

/// Strictly increasing posting IDs: dense (gaps 1-2, narrow block width)
/// or sparse (gaps up to ~1M, wide block width) — the two decode regimes
/// EXPERIMENTS.md Ablation O quotes.
std::vector<std::uint64_t> synthetic_postings(std::size_t n, bool sparse) {
  common::Rng rng(sparse ? 41 : 40);
  std::vector<std::uint64_t> ids(n);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += sparse ? 1 + rng() % 1000000 : 1 + rng() % 2;
    ids[i] = acc;
  }
  return ids;
}

void BM_VarintDecode(benchmark::State& state) {
  // Scalar LEB128 gap decode (the --codec=varint ablation baseline).
  // Bytes processed = decoded output (8 B/posting), so MB/s is directly
  // comparable with BM_BlockDecode on the same profile.
  const std::vector<std::uint64_t> ids = synthetic_postings(
      static_cast<std::size_t>(state.range(0)), state.range(1) != 0);
  const std::vector<std::uint8_t> encoded = search::compress_postings(ids);
  std::vector<std::uint64_t> out;
  out.reserve(ids.size());
  for (auto _ : state) {
    search::decompress_postings_into(encoded, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_VarintDecode)
    ->Args({100000, 0})   // dense gaps
    ->Args({100000, 1});  // sparse gaps

void BM_BlockDecode(benchmark::State& state) {
  // SWAR frame-of-reference decode (the serving default).
  const std::vector<std::uint64_t> ids = synthetic_postings(
      static_cast<std::size_t>(state.range(0)), state.range(1) != 0);
  const search::BlockPostings blocks = search::BlockPostings::encode(ids);
  std::vector<std::uint64_t> out;
  out.reserve(ids.size());
  for (auto _ : state) {
    blocks.decode_all(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_BlockDecode)
    ->Args({100000, 0})   // dense gaps
    ->Args({100000, 1});  // sparse gaps

/// The skewed 1:100 intersection cell shared by the three kernel benches
/// below, so their ns/posting numbers are directly comparable.
struct SkewedCell {
  std::vector<std::uint64_t> small;
  std::vector<std::uint64_t> large;

  static SkewedCell build(std::size_t na, std::size_t nb) {
    common::Rng rng(7);
    SkewedCell cell;
    cell.small.reserve(na);
    cell.large.reserve(nb);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < nb; ++i) {
      acc += 1 + rng() % 32;
      cell.large.push_back(acc);
      // ~na/nb of the large list also lands in the small list, so the
      // intersection is non-trivial in every kernel.
      if (rng() % (nb / na) == 0 && cell.small.size() < na)
        cell.small.push_back(acc);
    }
    while (cell.small.size() < na) {
      acc += 1 + rng() % 32;
      cell.small.push_back(acc);
    }
    return cell;
  }
};

void BM_IntersectMerge(benchmark::State& state) {
  // Classic two-pointer sorted merge — the baseline the block-max kernel
  // is measured against on the same 1:100 cell.
  const SkewedCell cell =
      SkewedCell::build(static_cast<std::size_t>(state.range(0)),
                        static_cast<std::size_t>(state.range(1)));
  std::vector<std::uint64_t> out;
  out.reserve(cell.small.size());
  for (auto _ : state) {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < cell.small.size() && j < cell.large.size()) {
      if (cell.small[i] < cell.large[j]) {
        ++i;
      } else if (cell.large[j] < cell.small[i]) {
        ++j;
      } else {
        out.push_back(cell.small[i]);
        ++i;
        ++j;
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          (state.range(0) + state.range(1)));
}
BENCHMARK(BM_IntersectMerge)->Args({1000, 100000});

void BM_IntersectGallop(benchmark::State& state) {
  // Span kernel (small drives, lower_bound gallop into the large list).
  const SkewedCell cell =
      SkewedCell::build(static_cast<std::size_t>(state.range(0)),
                        static_cast<std::size_t>(state.range(1)));
  std::vector<std::uint64_t> out;
  out.reserve(cell.small.size());
  for (auto _ : state) {
    search::intersect_into(cell.small.data(), cell.small.size(),
                           cell.large.data(), cell.large.size(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          (state.range(0) + state.range(1)));
}
BENCHMARK(BM_IntersectGallop)->Args({1000, 100000});

void BM_IntersectBlockMax(benchmark::State& state) {
  // Block-max skipping over the compressed large list, warm decoded-block
  // cache: the serving-path configuration.
  const SkewedCell cell =
      SkewedCell::build(static_cast<std::size_t>(state.range(0)),
                        static_cast<std::size_t>(state.range(1)));
  const search::BlockPostings blocks =
      search::BlockPostings::encode(cell.large);
  search::DecodedBlockCache cache;
  cache.begin_epoch(1);
  std::vector<std::uint64_t> out;
  out.reserve(cell.small.size());
  for (auto _ : state) {
    search::intersect_with_blocks(cell.small.data(), cell.small.size(),
                                  blocks, 0, &cache, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          (state.range(0) + state.range(1)));
}
BENCHMARK(BM_IntersectBlockMax)->Args({1000, 100000});

void BM_ResolveBatch(benchmark::State& state) {
  // Steady-state batched execution: one engine + scratch over a testbed
  // trace against a hashed placement — the replay inner loop without the
  // replay bookkeeping. Also the one-pass sizing regression gate: with
  // metrics on, each keyword must be sized exactly once per execution
  // (search.postings.sized == search.postings.fetched).
  trace::CorpusConfig corpus_cfg;
  corpus_cfg.num_documents = 3000;
  corpus_cfg.vocabulary_size = 2000;
  corpus_cfg.mean_distinct_words = 60.0;
  corpus_cfg.seed = 5;
  const search::InvertedIndex index =
      search::InvertedIndex::build(trace::Corpus::generate(corpus_cfg));

  trace::WorkloadConfig query_cfg;
  query_cfg.vocabulary_size = 2000;
  query_cfg.num_topics = 100;
  query_cfg.seed = 5;
  const trace::QueryTrace trace =
      trace::WorkloadModel(query_cfg).generate(
          static_cast<std::size_t>(state.range(0)), 5);

  core::PlacementMapConfig map_cfg;
  map_cfg.num_nodes = 16;
  const core::PlacementMap map = core::PlacementMap::hashed(2000, map_cfg);
  const auto placement = [&map](trace::KeywordId k) {
    return map.resolve(k);
  };

  const search::QueryEngine engine(index);
  std::size_t max_width = 0;
  for (std::size_t q = 0; q < trace.size(); ++q)
    max_width = std::max(max_width, trace[q].size());
  search::QueryScratch scratch;
  scratch.reserve(max_width, engine.max_postings());
  scratch.begin_epoch(map.cache_token());

  const auto run_batch = [&] {
    std::uint64_t bytes = 0;
    for (std::size_t q = 0; q < trace.size(); ++q)
      bytes +=
          engine.execute_intersection(trace[q], placement, {}, &scratch)
              .bytes_transferred;
    return bytes;
  };

  // One-pass regression assert (runs once, outside the timed loop): the
  // metrics-on path must size each keyword exactly once per execution.
  {
    auto& reg = common::MetricsRegistry::global();
    common::Counter& sized = reg.counter("search.postings.sized");
    common::Counter& fetched = reg.counter("search.postings.fetched");
    reg.set_enabled(true);
    sized.reset();
    fetched.reset();
    run_batch();
    CCA_CHECK_MSG(sized.total() == fetched.total(),
                  "metrics-on path sized keywords "
                      << sized.total() << " times for " << fetched.total()
                      << " fetches — sizing must be one pass per query");
    reg.set_enabled(false);
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batch());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ResolveBatch)->Arg(2000);

void BM_PairCounting(benchmark::State& state) {
  trace::WorkloadConfig cfg;
  cfg.vocabulary_size = 5000;
  cfg.num_topics = 200;
  const trace::WorkloadModel model(cfg);
  const trace::QueryTrace trace =
      model.generate(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::PairCounter::count_all_pairs(trace));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PairCounting)->Arg(10000)->Arg(50000);

core::CcaInstance bench_instance(int num_components, int objects_per_comp,
                                 int nodes) {
  common::Rng rng(3);
  std::vector<double> sizes;
  std::vector<core::PairWeight> pairs;
  for (int c = 0; c < num_components; ++c) {
    const int base = c * objects_per_comp;
    for (int o = 0; o < objects_per_comp; ++o) {
      sizes.push_back(1.0 + rng.next_double() * 9.0);
      if (o > 0)
        pairs.push_back({base + o - 1, base + o, 0.1 + rng.next_double() * 0.4,
                         1.0 + rng.next_double() * 10.0});
    }
  }
  double total = 0.0;
  for (double s : sizes) total += s;
  return core::CcaInstance(
      sizes, std::vector<double>(static_cast<std::size_t>(nodes),
                                 2.0 * total / nodes),
      pairs);
}

void BM_ComponentLpSolve(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComponentLpSolver(1).solve(instance));
  }
}
BENCHMARK(BM_ComponentLpSolve)->Arg(25)->Arg(100)->Arg(400);

void BM_FullLpSolve(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_cca_lp(instance));
  }
}
BENCHMARK(BM_FullLpSolve)->Arg(4)->Arg(10);

void BM_RandomizedRounding(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 10);
  const core::FractionalPlacement x = core::ComponentLpSolver(1).solve(instance);
  common::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::round_once(x, rng));
  }
}
BENCHMARK(BM_RandomizedRounding)->Arg(25)->Arg(100)->Arg(400);

void BM_DenseVsRevisedSimplex(benchmark::State& state) {
  // Random dense-ish LP solved by the engine selected via state.range(1).
  common::Rng rng(11);
  lp::Model model;
  const int n = static_cast<int>(state.range(0));
  std::vector<double> xstar(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    xstar[j] = rng.next_double() * 5.0;
    model.add_variable(0.0, 10.0, rng.next_double() * 4.0 - 2.0);
  }
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.next_double() < 0.3) {
        const double coef = rng.next_double() * 6.0 - 3.0;
        terms.push_back({j, coef});
        lhs += coef * xstar[j];
      }
    }
    if (!terms.empty())
      model.add_constraint(lp::Relation::kLessEqual,
                           lhs + rng.next_double(), std::move(terms));
  }
  const bool revised = state.range(1) != 0;
  for (auto _ : state) {
    if (revised) {
      benchmark::DoNotOptimize(lp::RevisedSimplex().solve(model));
    } else {
      benchmark::DoNotOptimize(lp::DenseSimplex().solve(model));
    }
  }
}
BENCHMARK(BM_DenseVsRevisedSimplex)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({120, 0})
    ->Args({120, 1});

/// Sparse LP in the presolvable regime (singleton / empty rows, fixed and
/// column-singleton variables), shared by the presolve and dual-lane
/// micro-benchmarks below. slack_scale shrinks the inequality slack of
/// the generator's feasible point: regenerating with the same seed and a
/// smaller scale yields a tightened sibling that is still feasible by
/// construction but makes the original optimal basis primal infeasible —
/// the post-perturbation shape the dual lane repairs.
lp::Model presolvable_model(int rows, std::uint64_t seed,
                            double slack_scale = 1.0) {
  common::Rng rng(seed);
  lp::Model model;
  const int n = 2 * rows;
  std::vector<double> x0(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double l = rng.next_double() < 0.1 ? 2.0 : 0.0;
    const double u = rng.next_double() < 0.1 ? l : 10.0;  // 10% fixed
    model.add_variable(l, u, rng.next_double() * 4.0 - 2.0);
    x0[static_cast<std::size_t>(j)] = l + (u - l) * rng.next_double();
  }
  // rhs values come from the known point x0, so the model is feasible by
  // construction even through the singleton equality rows.
  for (int i = 0; i < rows; ++i) {
    std::vector<lp::Term> terms;
    double activity = 0.0;
    const int width = 1 + static_cast<int>(rng.next_below(4));  // 25% singleton
    for (int k = 0; k < width; ++k) {
      const int j = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      const double a = 0.2 + rng.next_double();
      terms.push_back({j, a});
      activity += a * x0[static_cast<std::size_t>(j)];
    }
    if (i % 4 == 0) {
      model.add_constraint(lp::Relation::kEqual, activity, std::move(terms));
    } else {
      model.add_constraint(lp::Relation::kLessEqual,
                           activity + slack_scale * rng.next_double(),
                           std::move(terms));
    }
  }
  return model;
}

void BM_PresolvePass(benchmark::State& state) {
  // One full presolve reduction loop (rules to fixpoint + reduced-model
  // assembly), isolated from any simplex work. EXPERIMENTS.md quotes this
  // as the per-solve overhead presolve must amortize.
  const lp::Model model =
      presolvable_model(static_cast<int>(state.range(0)), 17);
  for (auto _ : state) {
    lp::Presolve pre;
    benchmark::DoNotOptimize(pre.run(model));
    benchmark::DoNotOptimize(pre.reduced_anything());
  }
}
BENCHMARK(BM_PresolvePass)->Arg(100)->Arg(400)->Arg(1600);

void BM_DualWarmRestart(benchmark::State& state) {
  // One dual-lane warm restart: re-solve an rhs-perturbed sibling from
  // the optimal basis, timing the dual ratio-test/BTRAN/FTRAN repair
  // cycle (a handful of pivots) against the phase-1 rebuild the primal
  // lane needs for the same hint (state.range(1) selects the lane).
  const int rows = static_cast<int>(state.range(0));
  const lp::Model base = presolvable_model(rows, 27);
  // Same structure, inequality slack shrunk to 25%: feasible by
  // construction, but tight enough that the base optimum's basis prices
  // out primal infeasible and the warm restart has real repair work.
  const lp::Model moved = presolvable_model(rows, 27, 0.25);
  lp::SolverOptions options;
  options.presolve = false;
  options.dual_lane = state.range(1) != 0;
  const lp::Solver solver(options.dual_lane ? lp::SolverKind::kDual
                                            : lp::SolverKind::kRevised,
                          options);
  const lp::SolveResult first = solver.solve(base);
  if (!first.optimal() || first.basis.empty()) {
    state.SkipWithError("base solve did not yield a warm-startable basis");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(moved, &first.basis));
  }
}
BENCHMARK(BM_DualWarmRestart)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({400, 0})
    ->Args({400, 1});

}  // namespace

BENCHMARK_MAIN();
