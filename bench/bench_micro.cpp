// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: MD5 hashing, Zipf sampling, posting-list intersection,
// pair counting, LP solves, and randomized rounding.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "core/component_solver.hpp"
#include "core/lp_formulation.hpp"
#include "core/rounding.hpp"
#include "hash/md5.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/presolve.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/solver.hpp"
#include "search/inverted_index.hpp"
#include "trace/pair_stats.hpp"
#include "trace/workload.hpp"

namespace {

using namespace cca;

void BM_Md5Digest64(benchmark::State& state) {
  const std::string input(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Md5::digest64(input));
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Digest64)->Arg(16)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ZipfSample(benchmark::State& state) {
  const common::ZipfSampler zipf(
      static_cast<std::size_t>(state.range(0)), 1.0);
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_PostingIntersection(benchmark::State& state) {
  common::Rng rng(7);
  std::vector<std::uint64_t> a, b;
  for (long i = 0; i < state.range(0); ++i) a.push_back(rng() % 1000000);
  for (long i = 0; i < state.range(1); ++i) b.push_back(rng() % 1000000);
  const search::PostingList list_a(std::move(a)), list_b(std::move(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::intersect(list_a, list_b));
  }
}
BENCHMARK(BM_PostingIntersection)
    ->Args({1000, 1000})     // merge path
    ->Args({100, 100000});   // galloping path

void BM_PairCounting(benchmark::State& state) {
  trace::WorkloadConfig cfg;
  cfg.vocabulary_size = 5000;
  cfg.num_topics = 200;
  const trace::WorkloadModel model(cfg);
  const trace::QueryTrace trace =
      model.generate(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::PairCounter::count_all_pairs(trace));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PairCounting)->Arg(10000)->Arg(50000);

core::CcaInstance bench_instance(int num_components, int objects_per_comp,
                                 int nodes) {
  common::Rng rng(3);
  std::vector<double> sizes;
  std::vector<core::PairWeight> pairs;
  for (int c = 0; c < num_components; ++c) {
    const int base = c * objects_per_comp;
    for (int o = 0; o < objects_per_comp; ++o) {
      sizes.push_back(1.0 + rng.next_double() * 9.0);
      if (o > 0)
        pairs.push_back({base + o - 1, base + o, 0.1 + rng.next_double() * 0.4,
                         1.0 + rng.next_double() * 10.0});
    }
  }
  double total = 0.0;
  for (double s : sizes) total += s;
  return core::CcaInstance(
      sizes, std::vector<double>(static_cast<std::size_t>(nodes),
                                 2.0 * total / nodes),
      pairs);
}

void BM_ComponentLpSolve(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComponentLpSolver(1).solve(instance));
  }
}
BENCHMARK(BM_ComponentLpSolve)->Arg(25)->Arg(100)->Arg(400);

void BM_FullLpSolve(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_cca_lp(instance));
  }
}
BENCHMARK(BM_FullLpSolve)->Arg(4)->Arg(10);

void BM_RandomizedRounding(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 10);
  const core::FractionalPlacement x = core::ComponentLpSolver(1).solve(instance);
  common::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::round_once(x, rng));
  }
}
BENCHMARK(BM_RandomizedRounding)->Arg(25)->Arg(100)->Arg(400);

void BM_DenseVsRevisedSimplex(benchmark::State& state) {
  // Random dense-ish LP solved by the engine selected via state.range(1).
  common::Rng rng(11);
  lp::Model model;
  const int n = static_cast<int>(state.range(0));
  std::vector<double> xstar(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    xstar[j] = rng.next_double() * 5.0;
    model.add_variable(0.0, 10.0, rng.next_double() * 4.0 - 2.0);
  }
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.next_double() < 0.3) {
        const double coef = rng.next_double() * 6.0 - 3.0;
        terms.push_back({j, coef});
        lhs += coef * xstar[j];
      }
    }
    if (!terms.empty())
      model.add_constraint(lp::Relation::kLessEqual,
                           lhs + rng.next_double(), std::move(terms));
  }
  const bool revised = state.range(1) != 0;
  for (auto _ : state) {
    if (revised) {
      benchmark::DoNotOptimize(lp::RevisedSimplex().solve(model));
    } else {
      benchmark::DoNotOptimize(lp::DenseSimplex().solve(model));
    }
  }
}
BENCHMARK(BM_DenseVsRevisedSimplex)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({120, 0})
    ->Args({120, 1});

/// Sparse LP in the presolvable regime (singleton / empty rows, fixed and
/// column-singleton variables), shared by the presolve and dual-lane
/// micro-benchmarks below. slack_scale shrinks the inequality slack of
/// the generator's feasible point: regenerating with the same seed and a
/// smaller scale yields a tightened sibling that is still feasible by
/// construction but makes the original optimal basis primal infeasible —
/// the post-perturbation shape the dual lane repairs.
lp::Model presolvable_model(int rows, std::uint64_t seed,
                            double slack_scale = 1.0) {
  common::Rng rng(seed);
  lp::Model model;
  const int n = 2 * rows;
  std::vector<double> x0(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double l = rng.next_double() < 0.1 ? 2.0 : 0.0;
    const double u = rng.next_double() < 0.1 ? l : 10.0;  // 10% fixed
    model.add_variable(l, u, rng.next_double() * 4.0 - 2.0);
    x0[static_cast<std::size_t>(j)] = l + (u - l) * rng.next_double();
  }
  // rhs values come from the known point x0, so the model is feasible by
  // construction even through the singleton equality rows.
  for (int i = 0; i < rows; ++i) {
    std::vector<lp::Term> terms;
    double activity = 0.0;
    const int width = 1 + static_cast<int>(rng.next_below(4));  // 25% singleton
    for (int k = 0; k < width; ++k) {
      const int j = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      const double a = 0.2 + rng.next_double();
      terms.push_back({j, a});
      activity += a * x0[static_cast<std::size_t>(j)];
    }
    if (i % 4 == 0) {
      model.add_constraint(lp::Relation::kEqual, activity, std::move(terms));
    } else {
      model.add_constraint(lp::Relation::kLessEqual,
                           activity + slack_scale * rng.next_double(),
                           std::move(terms));
    }
  }
  return model;
}

void BM_PresolvePass(benchmark::State& state) {
  // One full presolve reduction loop (rules to fixpoint + reduced-model
  // assembly), isolated from any simplex work. EXPERIMENTS.md quotes this
  // as the per-solve overhead presolve must amortize.
  const lp::Model model =
      presolvable_model(static_cast<int>(state.range(0)), 17);
  for (auto _ : state) {
    lp::Presolve pre;
    benchmark::DoNotOptimize(pre.run(model));
    benchmark::DoNotOptimize(pre.reduced_anything());
  }
}
BENCHMARK(BM_PresolvePass)->Arg(100)->Arg(400)->Arg(1600);

void BM_DualWarmRestart(benchmark::State& state) {
  // One dual-lane warm restart: re-solve an rhs-perturbed sibling from
  // the optimal basis, timing the dual ratio-test/BTRAN/FTRAN repair
  // cycle (a handful of pivots) against the phase-1 rebuild the primal
  // lane needs for the same hint (state.range(1) selects the lane).
  const int rows = static_cast<int>(state.range(0));
  const lp::Model base = presolvable_model(rows, 27);
  // Same structure, inequality slack shrunk to 25%: feasible by
  // construction, but tight enough that the base optimum's basis prices
  // out primal infeasible and the warm restart has real repair work.
  const lp::Model moved = presolvable_model(rows, 27, 0.25);
  lp::SolverOptions options;
  options.presolve = false;
  options.dual_lane = state.range(1) != 0;
  const lp::Solver solver(options.dual_lane ? lp::SolverKind::kDual
                                            : lp::SolverKind::kRevised,
                          options);
  const lp::SolveResult first = solver.solve(base);
  if (!first.optimal() || first.basis.empty()) {
    state.SkipWithError("base solve did not yield a warm-startable basis");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(moved, &first.basis));
  }
}
BENCHMARK(BM_DualWarmRestart)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({400, 0})
    ->Args({400, 1});

}  // namespace

BENCHMARK_MAIN();
