// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: MD5 hashing, Zipf sampling, posting-list intersection,
// pair counting, LP solves, and randomized rounding.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "core/component_solver.hpp"
#include "core/lp_formulation.hpp"
#include "core/rounding.hpp"
#include "hash/md5.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/revised_simplex.hpp"
#include "search/inverted_index.hpp"
#include "trace/pair_stats.hpp"
#include "trace/workload.hpp"

namespace {

using namespace cca;

void BM_Md5Digest64(benchmark::State& state) {
  const std::string input(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Md5::digest64(input));
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Digest64)->Arg(16)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ZipfSample(benchmark::State& state) {
  const common::ZipfSampler zipf(
      static_cast<std::size_t>(state.range(0)), 1.0);
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_PostingIntersection(benchmark::State& state) {
  common::Rng rng(7);
  std::vector<std::uint64_t> a, b;
  for (long i = 0; i < state.range(0); ++i) a.push_back(rng() % 1000000);
  for (long i = 0; i < state.range(1); ++i) b.push_back(rng() % 1000000);
  const search::PostingList list_a(std::move(a)), list_b(std::move(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::intersect(list_a, list_b));
  }
}
BENCHMARK(BM_PostingIntersection)
    ->Args({1000, 1000})     // merge path
    ->Args({100, 100000});   // galloping path

void BM_PairCounting(benchmark::State& state) {
  trace::WorkloadConfig cfg;
  cfg.vocabulary_size = 5000;
  cfg.num_topics = 200;
  const trace::WorkloadModel model(cfg);
  const trace::QueryTrace trace =
      model.generate(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::PairCounter::count_all_pairs(trace));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PairCounting)->Arg(10000)->Arg(50000);

core::CcaInstance bench_instance(int num_components, int objects_per_comp,
                                 int nodes) {
  common::Rng rng(3);
  std::vector<double> sizes;
  std::vector<core::PairWeight> pairs;
  for (int c = 0; c < num_components; ++c) {
    const int base = c * objects_per_comp;
    for (int o = 0; o < objects_per_comp; ++o) {
      sizes.push_back(1.0 + rng.next_double() * 9.0);
      if (o > 0)
        pairs.push_back({base + o - 1, base + o, 0.1 + rng.next_double() * 0.4,
                         1.0 + rng.next_double() * 10.0});
    }
  }
  double total = 0.0;
  for (double s : sizes) total += s;
  return core::CcaInstance(
      sizes, std::vector<double>(static_cast<std::size_t>(nodes),
                                 2.0 * total / nodes),
      pairs);
}

void BM_ComponentLpSolve(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComponentLpSolver(1).solve(instance));
  }
}
BENCHMARK(BM_ComponentLpSolve)->Arg(25)->Arg(100)->Arg(400);

void BM_FullLpSolve(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_cca_lp(instance));
  }
}
BENCHMARK(BM_FullLpSolve)->Arg(4)->Arg(10);

void BM_RandomizedRounding(benchmark::State& state) {
  const core::CcaInstance instance =
      bench_instance(static_cast<int>(state.range(0)), 4, 10);
  const core::FractionalPlacement x = core::ComponentLpSolver(1).solve(instance);
  common::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::round_once(x, rng));
  }
}
BENCHMARK(BM_RandomizedRounding)->Arg(25)->Arg(100)->Arg(400);

void BM_DenseVsRevisedSimplex(benchmark::State& state) {
  // Random dense-ish LP solved by the engine selected via state.range(1).
  common::Rng rng(11);
  lp::Model model;
  const int n = static_cast<int>(state.range(0));
  std::vector<double> xstar(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    xstar[j] = rng.next_double() * 5.0;
    model.add_variable(0.0, 10.0, rng.next_double() * 4.0 - 2.0);
  }
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.next_double() < 0.3) {
        const double coef = rng.next_double() * 6.0 - 3.0;
        terms.push_back({j, coef});
        lhs += coef * xstar[j];
      }
    }
    if (!terms.empty())
      model.add_constraint(lp::Relation::kLessEqual,
                           lhs + rng.next_double(), std::move(terms));
  }
  const bool revised = state.range(1) != 0;
  for (auto _ : state) {
    if (revised) {
      benchmark::DoNotOptimize(lp::RevisedSimplex().solve(model));
    } else {
      benchmark::DoNotOptimize(lp::DenseSimplex().solve(model));
    }
  }
}
BENCHMARK(BM_DenseVsRevisedSimplex)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({120, 0})
    ->Args({120, 1});

}  // namespace

BENCHMARK_MAIN();
