// Ablation H — placement under load (event-driven simulation).
//
// The paper reports communication volume; operators feel latency. This
// harness injects each month's queries as a Poisson stream against NICs
// of finite bandwidth and reports per-strategy latency percentiles and
// the busiest NIC's utilization across an arrival-rate sweep. Placements
// that move fewer bytes saturate later: the saturation knee is where
// correlation-aware placement turns into throughput.
//
//   ./bench_load_latency [--nodes=10] [--scope=1000] [--nic-mbps=40]
//                        [--sim-queries=20000]
//                        [--strategies=random-hash,greedy,lprr]
//                        [testbed flags]
//
// --strategies resolves through core::StrategyRegistry, so strategies
// registered at startup are benchmarkable by name with no code change
// here.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/event_sim.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  const double nic_mbps = args.get_double("nic-mbps", 40.0);
  const auto sim_queries =
      static_cast<std::size_t>(args.get_int("sim-queries", 20000));
  const std::vector<std::string> strategies = core::parse_strategy_list(
      args.get_string("strategies", "random-hash,greedy,lprr"));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation H — latency under load (event simulation)");
  std::cout << "NIC bandwidth " << nic_mbps << " Mbit/s per node, "
            << sim_queries << " Poisson arrivals per cell\n\n";

  const core::PartialOptimizerConfig opt_cfg = tb.optimizer_config(nodes,
                                                                   scope);
  const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
  const double capacity =
      opt_cfg.capacity_slack * tb.total_index_bytes / nodes;

  common::Table table({"arrival qps", "strategy", "p50 ms", "p99 ms",
                       "max NIC util"});
  for (const double qps : {500.0, 2000.0, 8000.0, 32000.0}) {
    for (const std::string& strategy : strategies) {
      const core::PlacementPlan plan = optimizer.run(strategy);
      sim::Cluster cluster(nodes, capacity);
      cluster.install_placement(tb.build_map(plan.keyword_to_node, nodes),
                                tb.sizes);

      sim::EventSimConfig sim_cfg;
      sim_cfg.arrival_rate_qps = qps;
      sim_cfg.nic_mbps = nic_mbps;
      sim_cfg.num_queries = sim_queries;
      sim_cfg.seed = cfg.seed;
      const sim::EventSimStats stats =
          sim::simulate_load(cluster, tb.index, tb.february, sim_cfg);
      table.add_row({common::Table::num(qps, 0), strategy,
                     common::Table::num(stats.p50_latency_ms, 2),
                     common::Table::num(stats.p99_latency_ms, 2),
                     common::Table::pct(stats.max_nic_utilization)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(open-loop arrivals; local queries cost 0 network ms."
               " Watch the p99 column: the strategy ordering from the"
               " byte-count figures becomes a saturation-knee ordering)\n";
  bench::write_metrics(cfg);
  return 0;
}
