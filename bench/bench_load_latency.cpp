// Ablation H — placement under load (event-driven simulation).
//
// The paper reports communication volume; operators feel latency. This
// harness injects each month's queries as a Poisson stream against NICs
// of finite bandwidth and reports per-strategy latency percentiles and
// the busiest NIC's utilization across an arrival-rate sweep. Placements
// that move fewer bytes saturate later: the saturation knee is where
// correlation-aware placement turns into throughput.
//
//   ./bench_load_latency [--nodes=10] [--scope=1000] [--nic-mbps=40]
//                        [--sim-queries=20000]
//                        [--strategies=random-hash,greedy,lprr]
//                        [--json=<path>] [testbed flags]
//
// --strategies resolves through core::StrategyRegistry, so strategies
// registered at startup are benchmarkable by name with no code change
// here. With --json the per-cell grid (queries/sec included) plus a
// data-plane section — block vs varint decode MB/s over this testbed's
// real posting lists — is dumped for the PR-over-PR perf trajectory
// (BENCH_load_latency.json, gated by bench/check_perf.py). stdout is
// unchanged by --json except for the trailing "wrote ..." line, and the
// golden-contract run passes no --json at all.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "search/block_postings.hpp"
#include "search/compression.hpp"
#include "sim/event_sim.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

/// Decode throughput of the whole vocabulary under `codec`, MB/s of
/// decoded output (8 B/posting — the same denominator for both codecs).
/// Best of a few sweeps, so one scheduler hiccup does not poison the
/// committed trajectory.
double measure_decode_mbps(const search::InvertedIndex& index,
                           search::PostingCodec codec) {
  const search::CompressedIndex compressed(index, codec);
  std::uint64_t decoded_bytes = 0;
  for (trace::KeywordId k = 0; k < index.vocabulary_size(); ++k)
    decoded_bytes += 8 * compressed.postings_count(k);
  std::vector<std::uint64_t> out;
  out.reserve(compressed.max_postings());
  double best = 0.0;
  std::uint64_t sink = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (trace::KeywordId k = 0; k < index.vocabulary_size(); ++k) {
      compressed.decode(k, out);
      if (!out.empty()) sink += out.back();
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (seconds > 0.0)
      best = std::max(best, static_cast<double>(decoded_bytes) / seconds /
                                1e6);
  }
  // Keep the decode loops observable.
  if (sink == 0xDEADBEEF) std::cerr << "";
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  const double nic_mbps = args.get_double("nic-mbps", 40.0);
  const auto sim_queries =
      static_cast<std::size_t>(args.get_int("sim-queries", 20000));
  const std::vector<std::string> strategies = core::parse_strategy_list(
      args.get_string("strategies", "random-hash,greedy,lprr"));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation H — latency under load (event simulation)");
  std::cout << "NIC bandwidth " << nic_mbps << " Mbit/s per node, "
            << sim_queries << " Poisson arrivals per cell\n\n";

  const core::PartialOptimizerConfig opt_cfg = tb.optimizer_config(nodes,
                                                                   scope);
  const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
  const double capacity =
      opt_cfg.capacity_slack * tb.total_index_bytes / nodes;

  common::Table table({"arrival qps", "strategy", "p50 ms", "p99 ms",
                       "max NIC util"});
  std::vector<std::string> json_cells;
  for (const double qps : {500.0, 2000.0, 8000.0, 32000.0}) {
    for (const std::string& strategy : strategies) {
      const core::PlacementPlan plan = optimizer.run(strategy);
      sim::Cluster cluster(nodes, capacity);
      cluster.install_placement(tb.build_map(plan.keyword_to_node, nodes),
                                tb.sizes);

      sim::EventSimConfig sim_cfg;
      sim_cfg.arrival_rate_qps = qps;
      sim_cfg.nic_mbps = nic_mbps;
      sim_cfg.num_queries = sim_queries;
      sim_cfg.seed = cfg.seed;
      const sim::EventSimStats stats =
          sim::simulate_load(cluster, tb.index, tb.february, sim_cfg);
      table.add_row({common::Table::num(qps, 0), strategy,
                     common::Table::num(stats.p50_latency_ms, 2),
                     common::Table::num(stats.p99_latency_ms, 2),
                     common::Table::pct(stats.max_nic_utilization)});
      if (!cfg.json_path.empty()) {
        const double queries_per_sec =
            stats.makespan_ms > 0.0
                ? static_cast<double>(stats.completed) /
                      (stats.makespan_ms / 1000.0)
                : 0.0;
        std::ostringstream cell;
        cell << "    {\"arrival_qps\": " << qps << ", \"strategy\": \""
             << strategy << "\", \"p50_ms\": " << stats.p50_latency_ms
             << ", \"p99_ms\": " << stats.p99_latency_ms
             << ", \"max_nic_util\": " << stats.max_nic_utilization
             << ", \"queries_per_sec\": " << queries_per_sec << "}";
        json_cells.push_back(cell.str());
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(open-loop arrivals; local queries cost 0 network ms."
               " Watch the p99 column: the strategy ordering from the"
               " byte-count figures becomes a saturation-knee ordering)\n";

  if (!cfg.json_path.empty()) {
    // The data-plane trajectory: decode throughput of both codecs over
    // this testbed's real posting lists. Measured only on the --json
    // lane, so golden-contract runs pay nothing.
    const double block_mbps =
        measure_decode_mbps(tb.index, search::PostingCodec::kBlock);
    const double varint_mbps =
        measure_decode_mbps(tb.index, search::PostingCodec::kVarint);
    std::ofstream out(cfg.json_path);
    CCA_CHECK_MSG(out.good(), "cannot write JSON log to " << cfg.json_path);
    out << "{\n  \"cells\": [\n";
    for (std::size_t i = 0; i < json_cells.size(); ++i)
      out << json_cells[i] << (i + 1 < json_cells.size() ? ",\n" : "\n");
    out << "  ],\n";
    out << "  \"data_plane\": {\n"
        << "    \"codec_default\": \""
        << search::posting_codec_name(search::default_posting_codec())
        << "\",\n"
        << "    \"block_decode_mbps\": " << block_mbps << ",\n"
        << "    \"varint_decode_mbps\": " << varint_mbps << ",\n"
        << "    \"decode_speedup\": "
        << (varint_mbps > 0.0 ? block_mbps / varint_mbps : 0.0) << "\n"
        << "  }\n}\n";
    std::cout << "\nwrote " << json_cells.size() << " cells to "
              << cfg.json_path << "\n";
  }

  bench::write_metrics(cfg);
  return 0;
}
