# Smoke contract: bench_churn's --json dump is valid JSON with the
# per-cell schema, covers the full (hash-tail x strategy) grid, and shows
# the consistent-hashing headline — a grow event moves a small fraction
# of the jump tail and most of the md5 tail. Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DPYTHON=... -DCHECKER=...
#         -DOUT_DIR=... -P <this>
set(grid_file ${OUT_DIR}/smoke_churn_grid.json)

execute_process(
  COMMAND ${BENCH} ${TB_ARGS} --json=${grid_file}
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_churn failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${grid_file}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "churn grid contract failed: ${out}${err}")
endif()
message(STATUS "${out}")
