// Figure 2 reproduction: (A) skewness of keyword-pair correlations and
// (B) their stability across two month-long observation periods.
//
// Paper reference points (Ask.com, Jan/Feb 2006): the most correlated
// pair is ~177x the 1000th pair, and only ~1.2% of top pairs change by
// more than 2x between months.
//
// The --miner flag selects the correlation miner: `exact` (PairCounter,
// one hash slot per distinct pair — the historical path, byte-identical
// output) or `sketch` (StreamMiner: Count-Min pair sketch + bounded
// candidate set, memory independent of the pair vocabulary). The sketch
// is what unlocks the million-object cell. --stream-batch=N generates and
// mines the trace in N-query batches instead of materializing it, so the
// only thing that grows with the workload is the miner itself:
//
//   ./bench_fig2_correlation --vocab=1000000 --queries=10000000
//       --topics=50000 --miner=sketch --stream-batch=100000
//
// --recall-check additionally builds the exact counter on the January
// stream and reports the sketch's top-k recall against it (the
// smoke_miner_equiv contract requires >= 0.95 at tier-1 scale); skip it
// at scales where the exact counter itself is the memory problem.
//
//   ./bench_fig2_correlation [--vocab=N] [--queries=N] [--seed=N]
//                            [--top=1000] [--drift=0.02]
//                            [--miner={exact,sketch}] [--recall-check]
//                            [--stream-batch=N] [--json=cells.json]
#include <sys/resource.h>

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "testbed.hpp"
#include "trace/pair_stats.hpp"
#include "trace/stream_miner.hpp"

using namespace cca;

namespace {

/// Peak resident set of this process so far, in KiB (ru_maxrss is KiB on
/// Linux). Goes to stderr/--json only: RSS is not deterministic, stdout
/// must stay byte-identical across runs and thread counts.
long peak_rss_kib() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

/// Top-k recall: fraction of `reference` pairs present in `mined`.
double top_k_recall(const std::vector<trace::PairCount>& reference,
                    const std::vector<trace::PairCount>& mined) {
  if (reference.empty()) return 1.0;
  std::size_t hit = 0;
  for (const trace::PairCount& ref : reference)
    for (const trace::PairCount& got : mined)
      if (got.pair == ref.pair) {
        ++hit;
        break;
      }
  return static_cast<double>(hit) / static_cast<double>(reference.size());
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  // Pair-stability statistics need deep traces: at the testbed default of
  // 40k queries the 1000th pair has only ~12 observations and sampling
  // noise would masquerade as instability (the paper used 29M queries).
  if (!args.has("queries")) cfg.queries = 300000;
  const auto top_k = static_cast<std::size_t>(args.get_int("top", 1000));
  const double drift = args.get_double("drift", 0.01);
  const bool recall_check = args.get_bool("recall-check", false);
  const auto stream_batch =
      static_cast<std::size_t>(args.get_int("stream-batch", 0));
  args.reject_unused();
  const bool sketch = cfg.miner.kind == core::MinerOptions::Kind::kSketch;

  // Fig. 2 needs only traces (no corpus); generate the "February" trace
  // from a slightly drifted model so stability reflects both sampling
  // noise and genuine interest drift.
  trace::WorkloadConfig query_cfg;
  query_cfg.vocabulary_size = cfg.vocabulary;
  query_cfg.num_topics = cfg.topics;
  query_cfg.topic_size = cfg.topic_size;
  query_cfg.seed = cfg.seed;
  const trace::WorkloadModel january_model(query_cfg);
  const trace::WorkloadModel february_model =
      january_model.drifted(drift, cfg.seed + 55);
  const std::uint64_t jan_seed = cfg.seed * 7919 + 1;
  const std::uint64_t feb_seed = cfg.seed * 104729 + 2;

  std::cout << "Figure 2 — keyword-pair correlation skewness & stability\n"
            << "traces: " << cfg.queries << " January queries, "
            << cfg.queries << " February queries (model drift " << drift
            << ")\n\n";

  // Streams one month into whichever miner is non-null, generating in
  // --stream-batch chunks so the full trace never exists in memory (the
  // million-object cell: queries are cheap, the materialized trace is
  // what breaks first). Batch seeds derive from the month seed, so the
  // stream is reproducible for fixed flags.
  const auto mine_month = [&](const trace::WorkloadModel& model,
                              std::uint64_t month_seed,
                              trace::StreamMiner* miner,
                              trace::PairCounter* counter) {
    std::size_t done = 0, batch_no = 0;
    while (done < cfg.queries) {
      const std::size_t n = stream_batch > 0
                                ? std::min(stream_batch, cfg.queries - done)
                                : cfg.queries;
      const trace::QueryTrace batch =
          model.generate(n, month_seed + 1000003 * batch_no);
      if (miner) miner->observe_trace(batch, trace::PairMode::kAllPairs);
      if (counter) counter->accumulate_all_pairs(batch);
      done += n;
      ++batch_no;
    }
  };

  // --- Mine both months with the selected miner. ---
  std::vector<trace::PairCount> top;  // January top-k with probabilities
  trace::StreamMiner jan_miner(cfg.miner.sketch);
  trace::StreamMiner feb_miner(cfg.miner.sketch);
  trace::PairCounter jan_exact, feb_exact;
  std::size_t miner_bytes = 0, distinct_or_candidates = 0;
  if (sketch) {
    mine_month(january_model, jan_seed, &jan_miner, nullptr);
    mine_month(february_model, feb_seed, &feb_miner, nullptr);
    top = jan_miner.top_pairs(top_k);
    miner_bytes = jan_miner.memory_bytes();
    distinct_or_candidates =
        jan_miner.top_pairs(cfg.miner.sketch.top_pairs).size();
  } else {
    mine_month(january_model, jan_seed, nullptr, &jan_exact);
    mine_month(february_model, feb_seed, nullptr, &feb_exact);
    top = jan_exact.top_pairs(top_k);
    miner_bytes = jan_exact.memory_bytes();
    distinct_or_candidates = jan_exact.distinct_pairs();
  }
  const double feb_n = static_cast<double>(cfg.queries);
  const auto feb_probability = [&](const trace::KeywordPair& pair) {
    if (sketch)
      return feb_miner.estimate_pair(pair.first, pair.second) /
             std::max(feb_miner.query_weight(), 1.0);
    return static_cast<double>(feb_exact.count(pair.first, pair.second)) /
           std::max(feb_n, 1.0);
  };

  // --- (A) skewness: correlation vs rank, log-scale flavour. ---
  std::cout << "(A) correlation by rank (January, " << (sketch ? "sketch" : "exact")
            << " miner):\n";
  common::Table skew({"pair rank", "P(pair | query) Jan", "P Feb",
                      "Feb/Jan ratio"});
  for (std::size_t rank : {std::size_t{1}, std::size_t{5}, std::size_t{10},
                           std::size_t{50}, std::size_t{100},
                           std::size_t{200}, std::size_t{500}, top_k}) {
    if (rank > top.size()) continue;
    const auto& pc = top[rank - 1];
    const double feb_p = feb_probability(pc.pair);
    skew.add_row({std::to_string(rank),
                  common::Table::num(pc.probability * 1e4, 3) + "e-4",
                  common::Table::num(feb_p * 1e4, 3) + "e-4",
                  common::Table::num(pc.probability > 0
                                         ? feb_p / pc.probability
                                         : 0.0, 2)});
  }
  bench::print_table(skew, cfg);
  if (top.size() >= top_k && top_k >= 1) {
    const double ratio = top.front().probability / top[top_k - 1].probability;
    std::cout << "\nskew summary: top pair is "
              << common::Table::num(ratio, 1) << "x the " << top_k
              << "th pair (paper: ~177x for its trace)\n";
  }

  // --- (B) stability. ---
  std::size_t pairs_changed = 0;
  double log_sum = 0.0;
  for (const trace::PairCount& pc : top) {
    const double ratio = feb_probability(pc.pair) / pc.probability;
    if (ratio > 2.0 || ratio < 0.5) ++pairs_changed;
    // An absent pair reads as a 2^64 change rather than infinity so the
    // mean stays finite (same convention as trace::compare_stability).
    log_sum += ratio > 0.0 ? std::abs(std::log2(ratio)) : 64.0;
  }
  const double changed_fraction =
      top.empty() ? 0.0
                  : static_cast<double>(pairs_changed) /
                        static_cast<double>(top.size());
  const double mean_abs_log2 =
      top.empty() ? 0.0 : log_sum / static_cast<double>(top.size());
  std::cout << "\n(B) stability of the top " << top.size()
            << " January pairs in February:\n"
            << "  pairs changed >2x or <0.5x: " << pairs_changed << " ("
            << common::Table::pct(changed_fraction) << "; paper: ~1.2%)\n"
            << "  mean |log2(Feb/Jan)|: "
            << common::Table::num(mean_abs_log2, 3) << "\n";

  // --- Miner footprint and (optional) sketch-vs-exact recall. ---
  std::cout << "\nminer: " << (sketch ? "sketch" : "exact") << ", "
            << distinct_or_candidates
            << (sketch ? " candidate pairs" : " distinct pairs") << ", "
            << miner_bytes / 1024 << " KiB retained\n";
  double recall = -1.0;
  std::size_t exact_bytes = 0;
  if (recall_check) {
    trace::PairCounter sketch_reference;
    if (sketch) mine_month(january_model, jan_seed, nullptr, &sketch_reference);
    const trace::PairCounter& reference =
        sketch ? sketch_reference : jan_exact;
    const std::vector<trace::PairCount> mined =
        sketch ? jan_miner.top_pairs(top_k) : top;
    recall = top_k_recall(reference.top_pairs(top_k), mined);
    exact_bytes = reference.memory_bytes();
    std::cout << "recall@" << top_k << " vs exact: "
              << common::Table::num(recall, 3) << " (exact miner holds "
              << reference.distinct_pairs() << " pairs, "
              << exact_bytes / 1024 << " KiB)\n";
  }
  // RSS is run-environment noise, never part of the deterministic stdout.
  const long rss_kib = peak_rss_kib();
  std::cerr << "peak RSS: " << rss_kib << " KiB\n";

  if (!cfg.json_path.empty()) {
    std::ofstream out(cfg.json_path);
    CCA_CHECK_MSG(out.good(), "cannot write JSON to " << cfg.json_path);
    out << "{\n"
        << "  \"miner\": \"" << (sketch ? "sketch" : "exact") << "\",\n"
        << "  \"vocab\": " << cfg.vocabulary << ",\n"
        << "  \"queries\": " << cfg.queries << ",\n"
        << "  \"top_k\": " << top_k << ",\n"
        << "  \"miner_bytes\": " << miner_bytes << ",\n"
        << "  \"exact_bytes\": " << exact_bytes << ",\n"
        << "  \"recall_vs_exact\": " << (recall < 0.0 ? -1.0 : recall)
        << ",\n"
        << "  \"changed_fraction\": " << changed_fraction << ",\n"
        << "  \"mean_abs_log2_ratio\": " << mean_abs_log2 << ",\n"
        << "  \"peak_rss_kib\": " << rss_kib << ",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < top.size(); ++i) {
      out << "    {\"rank\": " << (i + 1) << ", \"a\": " << top[i].pair.first
          << ", \"b\": " << top[i].pair.second
          << ", \"p_jan\": " << top[i].probability
          << ", \"p_feb\": " << feb_probability(top[i].pair) << "}"
          << (i + 1 < top.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << top.size() << " rows to " << cfg.json_path
              << "\n";
  }
  bench::write_metrics(cfg);
  return 0;
}
