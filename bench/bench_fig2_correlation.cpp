// Figure 2 reproduction: (A) skewness of keyword-pair correlations and
// (B) their stability across two month-long observation periods.
//
// Paper reference points (Ask.com, Jan/Feb 2006): the most correlated
// pair is ~177x the 1000th pair, and only ~1.2% of top pairs change by
// more than 2x between months.
//
//   ./bench_fig2_correlation [--vocab=N] [--queries=N] [--seed=N]
//                            [--top=1000] [--drift=0.02]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "testbed.hpp"
#include "trace/pair_stats.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  // Pair-stability statistics need deep traces: at the testbed default of
  // 40k queries the 1000th pair has only ~12 observations and sampling
  // noise would masquerade as instability (the paper used 29M queries).
  if (!args.has("queries")) cfg.queries = 300000;
  const auto top_k = static_cast<std::size_t>(args.get_int("top", 1000));
  const double drift = args.get_double("drift", 0.01);
  args.reject_unused();

  // Fig. 2 needs only traces (no corpus); generate the "February" trace
  // from a slightly drifted model so stability reflects both sampling
  // noise and genuine interest drift.
  trace::WorkloadConfig query_cfg;
  query_cfg.vocabulary_size = cfg.vocabulary;
  query_cfg.num_topics = cfg.topics;
  query_cfg.topic_size = cfg.topic_size;
  query_cfg.seed = cfg.seed;
  const trace::WorkloadModel january_model(query_cfg);
  const trace::WorkloadModel february_model =
      january_model.drifted(drift, cfg.seed + 55);
  const trace::QueryTrace january =
      january_model.generate(cfg.queries, cfg.seed * 7919 + 1);
  const trace::QueryTrace february =
      february_model.generate(cfg.queries, cfg.seed * 104729 + 2);

  std::cout << "Figure 2 — keyword-pair correlation skewness & stability\n"
            << "traces: " << january.size() << " January queries, "
            << february.size() << " February queries (model drift " << drift
            << ")\n\n";

  const trace::PairCounter jan = trace::PairCounter::count_all_pairs(january);
  const trace::PairCounter feb =
      trace::PairCounter::count_all_pairs(february);
  const auto top = jan.top_pairs(top_k);

  // --- (A) skewness: correlation vs rank, log-scale flavour. ---
  std::cout << "(A) correlation by rank (January):\n";
  common::Table skew({"pair rank", "P(pair | query) Jan", "P Feb",
                      "Feb/Jan ratio"});
  const double feb_n = static_cast<double>(feb.num_queries());
  for (std::size_t rank : {std::size_t{1}, std::size_t{5}, std::size_t{10},
                           std::size_t{50}, std::size_t{100},
                           std::size_t{200}, std::size_t{500}, top_k}) {
    if (rank > top.size()) continue;
    const auto& pc = top[rank - 1];
    const double feb_p =
        static_cast<double>(feb.count(pc.pair.first, pc.pair.second)) / feb_n;
    skew.add_row({std::to_string(rank),
                  common::Table::num(pc.probability * 1e4, 3) + "e-4",
                  common::Table::num(feb_p * 1e4, 3) + "e-4",
                  common::Table::num(pc.probability > 0
                                         ? feb_p / pc.probability
                                         : 0.0, 2)});
  }
  bench::print_table(skew, cfg);
  if (top.size() >= top_k) {
    const double ratio = top.front().probability / top[top_k - 1].probability;
    std::cout << "\nskew summary: top pair is "
              << common::Table::num(ratio, 1) << "x the " << top_k
              << "th pair (paper: ~177x for its trace)\n";
  }

  // --- (B) stability. ---
  const trace::StabilityReport stability =
      trace::compare_stability(jan, feb, top_k);
  std::cout << "\n(B) stability of the top " << stability.pairs_compared
            << " January pairs in February:\n"
            << "  pairs changed >2x or <0.5x: " << stability.pairs_changed
            << " (" << common::Table::pct(stability.changed_fraction)
            << "; paper: ~1.2%)\n"
            << "  mean |log2(Feb/Jan)|: "
            << common::Table::num(stability.mean_abs_log2_ratio, 3) << "\n";
  bench::write_metrics(cfg);
  return 0;
}
