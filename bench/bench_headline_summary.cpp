// Headline-numbers reproduction: the paper's abstract claims 37-86%
// communication reduction vs random hash placement and 30-78% vs the
// greedy heuristic "on a range of optimization scopes and system sizes".
// This harness sweeps the same grid (scopes x node counts) and reports
// the min/max savings bands.
//
//   ./bench_headline_summary [testbed flags]
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const bool csv = args.get_bool("csv", false);
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Headline summary — savings bands across the grid");

  const std::vector<std::size_t> scopes{250, 500, 1000, 2000};
  const std::vector<int> node_counts{10, 20, 50, 100};

  common::Table table({"scope", "nodes", "lprr vs random", "lprr vs greedy",
                       "lprr vs multilevel"});
  double min_vs_random = 1.0, max_vs_random = 0.0;
  double min_vs_greedy = 1.0, max_vs_greedy = 0.0;

  for (std::size_t scope : scopes) {
    for (int nodes : node_counts) {
      const auto random = tb.measure(core::Strategy::kRandom, nodes, 1);
      const auto greedy = tb.measure(core::Strategy::kGreedy, nodes, scope);
      const auto multilevel =
          tb.measure(core::Strategy::kMultilevel, nodes, scope);
      const auto lprr = tb.measure(core::Strategy::kLprr, nodes, scope);
      const double vs_random =
          1.0 - static_cast<double>(lprr.total_bytes) /
                    static_cast<double>(random.total_bytes);
      const double vs_greedy =
          1.0 - static_cast<double>(lprr.total_bytes) /
                    static_cast<double>(greedy.total_bytes);
      min_vs_random = std::min(min_vs_random, vs_random);
      max_vs_random = std::max(max_vs_random, vs_random);
      min_vs_greedy = std::min(min_vs_greedy, vs_greedy);
      max_vs_greedy = std::max(max_vs_greedy, vs_greedy);
      const double vs_multilevel =
          1.0 - static_cast<double>(lprr.total_bytes) /
                    static_cast<double>(multilevel.total_bytes);
      table.add_row({std::to_string(scope), std::to_string(nodes),
                     common::Table::pct(vs_random),
                     common::Table::pct(vs_greedy),
                     common::Table::pct(vs_multilevel)});
    }
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nLPRR saving vs random hash: "
            << common::Table::pct(min_vs_random) << " – "
            << common::Table::pct(max_vs_random)
            << "   (paper: 37% – 86%)\n"
            << "LPRR saving vs greedy:      "
            << common::Table::pct(min_vs_greedy) << " – "
            << common::Table::pct(max_vs_greedy)
            << "   (paper: 30% – 78%)\n";
  return 0;
}
