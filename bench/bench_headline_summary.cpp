// Headline-numbers reproduction: the paper's abstract claims 37-86%
// communication reduction vs random hash placement and 30-78% vs the
// greedy heuristic "on a range of optimization scopes and system sizes".
// This harness sweeps the same grid (scopes x node counts) and reports
// the min/max savings bands.
//
// The grid cells are independent (each owns its optimizer, cluster, and
// RNG), so they evaluate concurrently on the common::parallel pool; rows
// print in deterministic grid order and the table is bit-identical for
// any --threads value.
//
//   ./bench_headline_summary [--threads=N] [--json=path] [testbed flags]
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Headline summary — savings bands across the grid");

  const std::vector<std::size_t> scopes{250, 500, 1000, 2000};
  const std::vector<int> node_counts{10, 20, 50, 100};
  const std::vector<std::string> strategies{
      "random-hash", "greedy",
      "multilevel", "lprr"};

  // One task per (scope, nodes, strategy) for load balance; results land
  // in a strategy-major-indexed vector, so assembly below is in fixed
  // grid order regardless of completion order.
  const std::size_t grid = scopes.size() * node_counts.size();
  const auto cells =
      common::parallel_map(grid * strategies.size(), [&](std::size_t i) {
        const std::size_t cell = i / strategies.size();
        const std::string_view strategy = strategies[i % strategies.size()];
        const std::size_t scope_for_strategy =
            strategy == "random-hash"
                ? 1  // random hash ignores the scope
                : scopes[cell / node_counts.size()];
        const int nodes = node_counts[cell % node_counts.size()];
        return tb.measure_cell(strategy, nodes, scope_for_strategy);
      });
  const auto cell_of = [&](std::size_t scope_idx, std::size_t node_idx,
                           std::size_t strategy_idx) -> const bench::CellResult& {
    return cells[(scope_idx * node_counts.size() + node_idx) *
                     strategies.size() +
                 strategy_idx];
  };

  common::Table table({"scope", "nodes", "lprr vs random", "lprr vs greedy",
                       "lprr vs multilevel"});
  bench::JsonLog json(cfg.json_path);
  double min_vs_random = 1.0, max_vs_random = 0.0;
  double min_vs_greedy = 1.0, max_vs_greedy = 0.0;

  for (std::size_t si = 0; si < scopes.size(); ++si) {
    const std::size_t scope = scopes[si];
    for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
      const int nodes = node_counts[ni];
      const bench::CellResult& random = cell_of(si, ni, 0);
      const bench::CellResult& greedy = cell_of(si, ni, 1);
      const bench::CellResult& multilevel = cell_of(si, ni, 2);
      const bench::CellResult& lprr = cell_of(si, ni, 3);
      json.add(cfg, "random-hash", nodes, scope, random);
      json.add(cfg, "greedy", nodes, scope, greedy);
      json.add(cfg, "multilevel", nodes, scope, multilevel);
      json.add(cfg, "lprr", nodes, scope, lprr);
      const double vs_random =
          1.0 - static_cast<double>(lprr.stats.total_bytes) /
                    static_cast<double>(random.stats.total_bytes);
      const double vs_greedy =
          1.0 - static_cast<double>(lprr.stats.total_bytes) /
                    static_cast<double>(greedy.stats.total_bytes);
      min_vs_random = std::min(min_vs_random, vs_random);
      max_vs_random = std::max(max_vs_random, vs_random);
      min_vs_greedy = std::min(min_vs_greedy, vs_greedy);
      max_vs_greedy = std::max(max_vs_greedy, vs_greedy);
      const double vs_multilevel =
          1.0 - static_cast<double>(lprr.stats.total_bytes) /
                    static_cast<double>(multilevel.stats.total_bytes);
      table.add_row({std::to_string(scope), std::to_string(nodes),
                     common::Table::pct(vs_random),
                     common::Table::pct(vs_greedy),
                     common::Table::pct(vs_multilevel)});
    }
  }
  bench::print_table(table, cfg);
  std::cout << "\nLPRR saving vs random hash: "
            << common::Table::pct(min_vs_random) << " – "
            << common::Table::pct(max_vs_random)
            << "   (paper: 37% – 86%)\n"
            << "LPRR saving vs greedy:      "
            << common::Table::pct(min_vs_greedy) << " – "
            << common::Table::pct(max_vs_greedy)
            << "   (paper: 30% – 78%)\n";
  json.write();
  bench::write_metrics(cfg);
  return 0;
}
