# Smoke contract: bench_lp_solver's scaling-grid --json dump is valid
# JSON with the per-cell schema, every cell is optimal, and the dense and
# revised backends report equal objectives per (rows, density) cell.
# Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DPYTHON=... -DCHECKER=...
#         -DOUT_DIR=... -P <this>
set(grid_file ${OUT_DIR}/smoke_lp_grid.json)

execute_process(
  COMMAND ${BENCH} ${TB_ARGS} --nodes=4 --full-limit=0 --grid-max-rows=100
    --json=${grid_file}
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_lp_solver failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${grid_file}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "LP grid contract failed: ${out}${err}")
endif()
message(STATUS "${out}")
