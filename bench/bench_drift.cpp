// Ablation F — correlation drift and bounded-churn replanning.
//
// The paper's premise (Fig. 2B) is that correlations are stable enough
// for a placement to stay effective "for a significantly long time
// period". This harness makes the horizon quantitative: it drifts the
// interest model by epsilon, re-estimates correlations, and compares
//   * stale    — keep the old placement (the paper's implicit strategy),
//   * fresh    — full re-optimization (max migration),
//   * budgeted — IncrementalOptimizer at a 10% migration byte budget.
// Costs are the modeled objective on the drifted scoped instance,
// normalized to random hash; migration is in fractions of total bytes.
//
// With --miner=sketch the re-estimation step runs on the streaming miner
// instead of the exact counter: each drift level copies the January-mined
// sketch, opens a decay window (--miner-decay), and feeds only the new
// trace — the bounded-memory "re-mine cheaply under drift" path that a
// million-object deployment would use (correlations become exponentially-
// weighted moving estimates instead of exact batch counts).
//
//   ./bench_drift [--nodes=10] [--scope=800] [--budget=0.1]
//                 [--miner={exact,sketch}] [--miner-decay=0.3]
//                 [testbed flags]
#include <iostream>
#include <unordered_map>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/migration.hpp"
#include "testbed.hpp"
#include "trace/stream_miner.hpp"

using namespace cca;

namespace {

/// Scoped CCA instance over a FIXED keyword set, built from pre-mined
/// full-vocabulary pair weights (so instances before/after drift share
/// the object space and placements are comparable).
core::CcaInstance scoped_instance(
    const std::vector<trace::KeywordId>& scope,
    const std::vector<std::uint64_t>& sizes,
    const std::vector<core::KeywordPairWeight>& mined_pairs, int nodes,
    double slack) {
  std::unordered_map<trace::KeywordId, int> object_of;
  std::vector<double> object_sizes;
  object_sizes.reserve(scope.size());
  double total = 0.0;
  for (std::size_t pos = 0; pos < scope.size(); ++pos) {
    object_of[scope[pos]] = static_cast<int>(pos);
    object_sizes.push_back(static_cast<double>(sizes[scope[pos]]));
    total += object_sizes.back();
  }
  std::vector<core::PairWeight> pairs;
  for (const core::KeywordPairWeight& p : mined_pairs) {
    const auto i = object_of.find(p.a);
    const auto j = object_of.find(p.b);
    if (i == object_of.end() || j == object_of.end()) continue;
    pairs.push_back({i->second, j->second, p.r, p.w});
  }
  return core::CcaInstance(
      object_sizes,
      std::vector<double>(static_cast<std::size_t>(nodes),
                          slack * total / nodes),
      pairs);
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 800));
  const double budget = args.get_double("budget", 0.1);
  const double miner_decay = args.get_double("miner-decay", 0.3);
  args.reject_unused();
  const bool sketch = cfg.miner.kind == core::MinerOptions::Kind::kSketch;
  CCA_CHECK_MSG(miner_decay > 0.0 && miner_decay <= 1.0,
                "--miner-decay must be in (0, 1], got " << miner_decay);

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation F — drift horizon and bounded-churn replanning");

  // Baseline placement from the January trace (mined with the selected
  // miner, so the sketch path is sketch end-to-end).
  core::PartialOptimizerConfig opt_cfg;
  opt_cfg.num_nodes = nodes;
  opt_cfg.scope = scope;
  opt_cfg.seed = cfg.seed;
  opt_cfg.miner = cfg.miner;
  opt_cfg.rounding.trials = 16;
  const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
  const core::PlacementPlan plan = optimizer.run("lprr");

  // Sketch path: mine January once; every drift level re-mines by decayed
  // continuation instead of a from-scratch batch count.
  trace::StreamMiner january_miner(cfg.miner.sketch);
  if (sketch)
    january_miner.observe_trace(tb.january, trace::PairMode::kSmallestPair,
                                &tb.sizes);

  // The fixed object space: January's scope.
  const core::CcaInstance january_instance = scoped_instance(
      plan.scope, tb.sizes,
      sketch ? core::build_pair_weights(january_miner, tb.sizes)
             : core::build_pair_weights(tb.january, tb.sizes,
                                        core::OperationModel::kSmallestPair),
      nodes, opt_cfg.capacity_slack);
  core::Placement current(plan.scope.size());
  for (std::size_t pos = 0; pos < plan.scope.size(); ++pos)
    current[pos] = plan.keyword_to_node[plan.scope[pos]];

  // One optimizer per budget level, hoisted out of the drift loop: each
  // owns an LP warm-start cache, so every drift level after the first
  // re-solves the (same-shape) component LPs from the previous level's
  // optimal basis instead of from scratch. Results are identical either
  // way — visible only as lp.warm_start.hits under --metrics.
  core::IncrementalConfig inc_cfg;
  inc_cfg.migration_budget_fraction = budget;
  inc_cfg.rounding.trials = 16;
  inc_cfg.seed = cfg.seed;
  const core::IncrementalOptimizer budgeted_optimizer(inc_cfg);
  core::IncrementalConfig full_cfg = inc_cfg;
  full_cfg.migration_budget_fraction = 1.0;
  const core::IncrementalOptimizer fresh_optimizer(full_cfg);

  common::Table table({"drift", "stale norm.", "budgeted norm.",
                       "budgeted moved", "fresh norm.", "fresh moved"});
  for (const double drift : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const trace::WorkloadModel drifted_model =
        tb.model.drifted(drift, cfg.seed + 977);
    const trace::QueryTrace drifted_trace =
        drifted_model.generate(cfg.queries, cfg.seed * 271 + 5);
    std::vector<core::KeywordPairWeight> drifted_pairs;
    if (sketch) {
      // Decayed continuation: keep the January summary, open a window, and
      // stream only the new observations. Memory stays bounded and the old
      // interest distribution fades at --miner-decay per window.
      trace::StreamMiner remined = january_miner;
      remined.advance_window(miner_decay);
      remined.observe_trace(drifted_trace, trace::PairMode::kSmallestPair,
                            &tb.sizes);
      drifted_pairs = core::build_pair_weights(remined, tb.sizes);
    } else {
      drifted_pairs = core::build_pair_weights(
          drifted_trace, tb.sizes, core::OperationModel::kSmallestPair);
    }
    const core::CcaInstance drifted = scoped_instance(
        plan.scope, tb.sizes, drifted_pairs, nodes, opt_cfg.capacity_slack);

    // Normalizer: random hash on the same instance.
    const core::Placement random = core::random_hash_placement(
        drifted, [&](int i) { return trace::keyword_name(plan.scope[i]); });
    const double random_cost = drifted.communication_cost(random);

    const core::IncrementalResult budgeted =
        budgeted_optimizer.reoptimize(drifted, current);
    const core::IncrementalResult fresh =
        fresh_optimizer.reoptimize(drifted, current);

    const auto norm = [&](double cost) {
      return common::Table::num(cost / std::max(random_cost, 1e-9), 3);
    };
    table.add_row({common::Table::pct(drift, 0), norm(budgeted.stale_cost),
                   norm(budgeted.cost),
                   common::Table::pct(budgeted.migration.moved_fraction),
                   norm(fresh.cost),
                   common::Table::pct(fresh.migration.moved_fraction)});
  }
  table.print(std::cout);
  std::cout << "\n(modeled objective on the drifted scoped instance,"
               " normalized to random hash; budgeted = incremental"
               " re-optimization at a "
            << common::Table::pct(budget) << " migration byte budget)\n";
  bench::write_metrics(cfg);
  return 0;
}
