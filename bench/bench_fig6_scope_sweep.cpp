// Figure 6 reproduction: communication cost (normalized to random hash
// placement) vs optimization scope, at a fixed system size of 10 nodes.
//
// Paper reference points: with the top-10000 keywords optimized, LPRR
// saves ~78% vs random and greedy up to ~44%; savings grow with scope and
// LPRR dominates greedy throughout. Our sweep keeps the paper's
// scope-to-vocabulary regime at reproduction scale (see EXPERIMENTS.md).
//
//   ./bench_fig6_scope_sweep [--nodes=10] [--min-scope=25]
//                            [--max-scope=3200] [--seeds=3] [testbed flags]
//
// With --seeds=K each row averages K independent testbeds (corpus, trace,
// and optimizer seeds all vary); the +- column is the 95% CI half-width.
//
// The sweep is geometric (each step doubles the scope): the paper's
// linear 1000..10000 range spans cost coverages of roughly 20%..60% on
// its 253k-keyword vocabulary, and on our scaled-down testbed the same
// coverage span lives at much smaller scopes (see bench_fig5_importance).
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto min_scope =
      static_cast<std::size_t>(args.get_int("min-scope", 25));
  const auto max_scope =
      static_cast<std::size_t>(args.get_int("max-scope", 3200));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const bool csv = args.get_bool("csv", false);
  args.reject_unused();

  std::cout << "Figure 6 — communication vs optimization scope\n"
            << "system size: " << nodes << " nodes; capacity = 2x average"
            << " load (paper's rule); averaging " << seeds << " seeds\n\n";

  std::vector<std::size_t> scopes;
  for (std::size_t scope = min_scope; scope <= max_scope; scope *= 2)
    scopes.push_back(scope);
  std::vector<common::RunningStats> greedy_norm(scopes.size()),
      multilevel_norm(scopes.size()), lprr_norm(scopes.size()),
      lprr_imbalance(scopes.size());

  for (int s = 0; s < seeds; ++s) {
    bench::TestbedConfig seeded = cfg;
    seeded.seed = cfg.seed + static_cast<std::uint64_t>(s);
    const bench::Testbed tb = bench::Testbed::build(seeded);
    if (s == 0) tb.print_banner("(first testbed)");
    // Random hash ignores the scope: one normalization base per seed.
    const sim::ReplayStats random =
        tb.measure(core::Strategy::kRandom, nodes, 1);
    for (std::size_t i = 0; i < scopes.size(); ++i) {
      const auto norm = [&](const sim::ReplayStats& stats) {
        return static_cast<double>(stats.total_bytes) /
               static_cast<double>(random.total_bytes);
      };
      greedy_norm[i].add(
          norm(tb.measure(core::Strategy::kGreedy, nodes, scopes[i])));
      multilevel_norm[i].add(
          norm(tb.measure(core::Strategy::kMultilevel, nodes, scopes[i])));
      const sim::ReplayStats lprr =
          tb.measure(core::Strategy::kLprr, nodes, scopes[i]);
      lprr_norm[i].add(norm(lprr));
      lprr_imbalance[i].add(lprr.storage_imbalance);
    }
  }

  common::Table table({"scope (top keywords)", "greedy norm. cost",
                       "multilevel norm. cost", "lprr norm. cost", "+-",
                       "lprr saving", "lprr storage imbalance"});
  for (std::size_t i = 0; i < scopes.size(); ++i) {
    table.add_row({std::to_string(scopes[i]),
                   common::Table::num(greedy_norm[i].mean(), 3),
                   common::Table::num(multilevel_norm[i].mean(), 3),
                   common::Table::num(lprr_norm[i].mean(), 3),
                   common::Table::num(lprr_norm[i].ci95_halfwidth(), 3),
                   common::Table::pct(1.0 - lprr_norm[i].mean()),
                   common::Table::num(lprr_imbalance[i].mean(), 2)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(normalized to random hash = 1.0; paper Fig. 6 shows the"
               " same monotone-improving curves with LPRR below greedy;"
               " multilevel partitioning is our added modern comparator)\n";
  return 0;
}
