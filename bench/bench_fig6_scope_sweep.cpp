// Figure 6 reproduction: communication cost (normalized to random hash
// placement) vs optimization scope, at a fixed system size of 10 nodes.
//
// Paper reference points: with the top-10000 keywords optimized, LPRR
// saves ~78% vs random and greedy up to ~44%; savings grow with scope and
// LPRR dominates greedy throughout. Our sweep keeps the paper's
// scope-to-vocabulary regime at reproduction scale (see EXPERIMENTS.md).
//
//   ./bench_fig6_scope_sweep [--nodes=10] [--min-scope=25]
//                            [--max-scope=3200] [--seeds=3] [--threads=N]
//                            [--json=path] [testbed flags]
//
// With --seeds=K each row averages K independent testbeds (corpus, trace,
// and optimizer seeds all vary); the +- column is the 95% CI half-width.
//
// The sweep is geometric (each step doubles the scope): the paper's
// linear 1000..10000 range spans cost coverages of roughly 20%..60% on
// its 253k-keyword vocabulary, and on our scaled-down testbed the same
// coverage span lives at much smaller scopes (see bench_fig5_importance).
//
// The (seed x scope) grid cells are independent and evaluate concurrently;
// per-seed normalized costs accumulate into the row statistics in fixed
// seed order after the join, so output is identical for any --threads.
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto min_scope =
      static_cast<std::size_t>(args.get_int("min-scope", 25));
  const auto max_scope =
      static_cast<std::size_t>(args.get_int("max-scope", 3200));
  const int seeds = cfg.seeds;
  args.reject_unused();

  std::cout << "Figure 6 — communication vs optimization scope\n"
            << "system size: " << nodes << " nodes; capacity = 2x average"
            << " load (paper's rule); averaging " << seeds << " seeds\n\n";

  std::vector<std::size_t> scopes;
  for (std::size_t scope = min_scope; scope <= max_scope; scope *= 2)
    scopes.push_back(scope);

  // Phase 1 — one testbed + random-hash baseline per seed, concurrently.
  // (unique_ptr because Testbed is not default-constructible, which
  // parallel_map's index-ordered result vector requires.)
  struct SeedBase {
    bench::Testbed tb;
    bench::CellResult random;
  };
  const auto bases = common::parallel_map(
      static_cast<std::size_t>(seeds), [&](std::size_t s) {
        const bench::TestbedConfig seeded = cfg.with_seed_offset(s);
        auto base = std::make_unique<SeedBase>(
            SeedBase{bench::Testbed::build(seeded), {}});
        // Random hash ignores the scope: one normalization base per seed.
        base->random = base->tb.measure_cell("random-hash", nodes, 1);
        return base;
      });
  bases[0]->tb.print_banner("(first testbed)");

  // Phase 2 — every (seed, scope) cell runs the three optimizing
  // strategies; cells are independent and run concurrently.
  struct Cell {
    bench::CellResult greedy, multilevel, lprr;
  };
  const auto cells = common::parallel_map(
      static_cast<std::size_t>(seeds) * scopes.size(), [&](std::size_t i) {
        const bench::Testbed& tb = bases[i / scopes.size()]->tb;
        const std::size_t scope = scopes[i % scopes.size()];
        return Cell{tb.measure_cell("greedy", nodes, scope),
                    tb.measure_cell("multilevel", nodes, scope),
                    tb.measure_cell("lprr", nodes, scope)};
      });

  // Reduction in fixed seed-major order: the accumulated doubles see the
  // same addition order as a sequential sweep.
  std::vector<common::RunningStats> greedy_norm(scopes.size()),
      multilevel_norm(scopes.size()), lprr_norm(scopes.size()),
      lprr_imbalance(scopes.size());
  bench::JsonLog json(cfg.json_path);
  for (int s = 0; s < seeds; ++s) {
    const SeedBase& base = *bases[s];
    const bench::TestbedConfig seeded =
        cfg.with_seed_offset(static_cast<std::uint64_t>(s));
    json.add(seeded, "random-hash", nodes, 1, base.random);
    for (std::size_t i = 0; i < scopes.size(); ++i) {
      const Cell& cell = cells[static_cast<std::size_t>(s) * scopes.size() + i];
      const auto norm = [&](const sim::ReplayStats& stats) {
        return static_cast<double>(stats.total_bytes) /
               static_cast<double>(base.random.stats.total_bytes);
      };
      greedy_norm[i].add(norm(cell.greedy.stats));
      multilevel_norm[i].add(norm(cell.multilevel.stats));
      lprr_norm[i].add(norm(cell.lprr.stats));
      lprr_imbalance[i].add(cell.lprr.stats.storage_imbalance);
      json.add(seeded, "greedy", nodes, scopes[i], cell.greedy);
      json.add(seeded, "multilevel", nodes, scopes[i], cell.multilevel);
      json.add(seeded, "lprr", nodes, scopes[i], cell.lprr);
    }
  }

  common::Table table({"scope (top keywords)", "greedy norm. cost",
                       "multilevel norm. cost", "lprr norm. cost", "+-",
                       "lprr saving", "lprr storage imbalance"});
  for (std::size_t i = 0; i < scopes.size(); ++i) {
    table.add_row({std::to_string(scopes[i]),
                   common::Table::num(greedy_norm[i].mean(), 3),
                   common::Table::num(multilevel_norm[i].mean(), 3),
                   common::Table::num(lprr_norm[i].mean(), 3),
                   common::Table::num(lprr_norm[i].ci95_halfwidth(), 3),
                   common::Table::pct(1.0 - lprr_norm[i].mean()),
                   common::Table::num(lprr_imbalance[i].mean(), 2)});
  }
  bench::print_table(table, cfg);
  std::cout << "\n(normalized to random hash = 1.0; paper Fig. 6 shows the"
               " same monotone-improving curves with LPRR below greedy;"
               " multilevel partitioning is our added modern comparator)\n";
  json.write();
  bench::write_metrics(cfg);
  return 0;
}
