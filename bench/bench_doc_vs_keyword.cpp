// Ablation I — keyword-based vs document-based partitioning (footnote 1).
//
// The paper's footnote 1 scopes the study to keyword partitioning. This
// harness quantifies the alternative it set aside: document partitioning
// never ships posting lists (every node intersects its own document
// slice) but broadcasts every query to every node and gathers the
// results, so its communication AND its CPU fan-out grow with the node
// count while keyword partitioning's costs depend on placement quality.
//
//   ./bench_doc_vs_keyword [--scope=1000] [testbed flags]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/doc_partition.hpp"
#include "testbed.hpp"
#include "trace/documents.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation I — keyword vs document partitioning");

  // The document-partitioned replay needs the corpus itself (to slice by
  // document); rebuild it with the testbed's configuration.
  trace::CorpusConfig corpus_cfg;
  corpus_cfg.num_documents = cfg.documents;
  corpus_cfg.vocabulary_size = cfg.vocabulary;
  corpus_cfg.mean_distinct_words = cfg.words_per_doc;
  corpus_cfg.seed = cfg.seed;
  const trace::Corpus corpus = trace::Corpus::generate(corpus_cfg);

  common::Table table({"nodes", "scheme", "bytes/query", "msgs/query",
                       "wasted node work", "storage imbalance"});
  for (const int nodes : {10, 20, 50, 100}) {
    // Document partitioning.
    sim::DocPartitionConfig doc_cfg;
    doc_cfg.num_nodes = nodes;
    const sim::DocPartitionStats doc =
        sim::replay_doc_partitioned(corpus, tb.february, doc_cfg);
    table.add_row({std::to_string(nodes), "doc-partitioned",
                   common::Table::num(doc.mean_bytes_per_query, 1),
                   common::Table::num(
                       static_cast<double>(doc.total_messages) /
                           static_cast<double>(doc.queries),
                       1),
                   common::Table::pct(doc.wasted_node_fraction),
                   common::Table::num(doc.storage_imbalance, 2)});

    // Keyword partitioning: random hash and LPRR.
    for (const std::string_view strategy :
         {"random-hash", "lprr"}) {
      const sim::ReplayStats kw = tb.measure(strategy, nodes, scope);
      table.add_row(
          {std::to_string(nodes),
           std::string("kw-") + std::string(strategy),
           common::Table::num(kw.mean_bytes_per_query, 1),
           common::Table::num(static_cast<double>(kw.total_messages) /
                                  static_cast<double>(kw.queries),
                              2),
           "0.0%",  // keyword partitioning computes only where indices live
           common::Table::num(kw.storage_imbalance, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(doc partitioning: 2(N-1) messages and N-way CPU fan-out"
               " per query, but perfect storage balance and no index"
               " shipping; keyword partitioning pays bytes only where the"
               " placement is wrong — which LPRR minimizes. The paper's"
               " footnote 1 trade-off, quantified.)\n";
  bench::write_metrics(cfg);
  return 0;
}
