// Fault tolerance — availability and recovery under fail-stop faults.
//
// The paper's evaluation assumes a healthy cluster; its Sec. 5 pointer
// to replication-degree customization only matters when nodes can die.
// This harness injects a seeded fail-stop fault timeline (sim/faults.hpp)
// into the trace replay and asks two questions:
//
//   Table 1 — serving under faults: fault rate x replication degree x
//   strategy. Replicas follow the placement (core::PlacementMap replica
//   sets), so failover preserves the co-location the optimizer paid for;
//   degree 0
//   is the replica-free baseline, degree N-1 the full-replication limit.
//   Availability counts fully-served queries; coverage credits partial
//   results; p99 includes the retry/timeout penalties queries paid
//   discovering dead replicas.
//
//   Table 2 — recovery: at the worst instant of the timeline (most nodes
//   down simultaneously), core::RecoveryPlanner re-places the dead-hosted
//   scope objects onto survivors under a migration-byte budget sweep,
//   weighting objects by query frequency. The availability column
//   re-scores the evaluation trace against the repaired placement at
//   that frozen instant.
//
//   Tables 3/4 (only with --topology) — hierarchical failure domains:
//   a scripted single-domain fail-stop (domain 0 dead for the middle
//   half of the horizon) at each granularity the topology supports
//   (node / rack / row), crossed with replica spread {flat, rack, row}
//   and degree {1, 2}. Table 3 reports availability and p99 under the
//   outage — the Mills et al. headline is rack-spread surviving a rack
//   loss that kills every flat (primary+r) mod N tail inside the rack.
//   Table 4 rebuilds the dead domain's scope objects at mid-outage,
//   single-successor funnel vs DAOS-style declustered, reporting the
//   parallel rebuild makespan under --rebuild-mbps per destination.
//
// The same fault schedule is shared by every strategy and degree of a
// sweep — comparisons see identical failure timelines.
//
//   ./bench_fault_tolerance [--nodes=10] [--scope=1000]
//       [--strategies=random-hash,lprr]
//       [--mttf=10000] [--mttr=1000] [--fault-horizon=60000]
//       [--fault-seed=1] [--timeout-ms=5] [--max-attempts=3]
//       [--topology=rows:racks:nodes] [--replica-spread={flat,rack,row}]
//       [--fault-script=rack:t,id;...] [--rack-mttf=...] [--row-mttf=...]
//       [--rebuild-mbps=800] [testbed flags]
//
// Output is bit-identical for any --threads (the determinism contract of
// the parallel substrate extends through the fault layer; enforced by the
// smoke suite), and byte-identical to the pre-topology output when no
// topology flags are passed (the golden contract).
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/placement_map.hpp"
#include "core/recovery.hpp"
#include "sim/faults.hpp"
#include "sim/pool_map.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

/// Fraction of trace queries whose every keyword's primary is alive under
/// `keyword_to_node` at a frozen liveness snapshot (no failover — the
/// recovery table isolates what re-placement alone restores).
double frozen_availability(const trace::QueryTrace& trace,
                           const std::vector<int>& keyword_to_node,
                           const std::vector<bool>& alive) {
  if (trace.empty()) return 1.0;
  std::size_t served = 0;
  for (const trace::Query& query : trace.queries()) {
    bool all_alive = true;
    for (const trace::KeywordId k : query.keywords)
      if (!alive[static_cast<std::size_t>(keyword_to_node[k])]) {
        all_alive = false;
        break;
      }
    if (all_alive) ++served;
  }
  return static_cast<double>(served) / static_cast<double>(trace.size());
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const bench::FaultFlags faults = bench::FaultFlags::from_cli(args);
  int nodes = static_cast<int>(args.get_int("nodes", 10));
  if (faults.pool) {
    // The topology is authoritative for the cluster size; an explicit
    // --nodes must agree with it.
    CCA_CHECK_MSG(!args.has("nodes") || nodes == faults.pool->num_nodes(),
                  "--nodes=" << nodes << " disagrees with --topology ("
                             << faults.pool->num_nodes() << " nodes)");
    nodes = faults.pool->num_nodes();
  }
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  const std::vector<std::string> strategies = core::parse_strategy_list(
      args.get_string("strategies", "random-hash,lprr"));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Fault tolerance — availability and recovery");

  const core::PartialOptimizerConfig opt_cfg = tb.optimizer_config(nodes,
                                                                   scope);
  const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
  const double capacity =
      opt_cfg.capacity_slack * tb.total_index_bytes / nodes;

  // Arrivals paced so the replay (one arrival per evaluation query)
  // spans the fault horizon — queries arriving after it would see an
  // always-healthy cluster.
  const double arrival_qps =
      static_cast<double>(tb.february.size()) * 1000.0 / faults.horizon_ms;
  std::cout << "fault model: mttf=" << faults.mttf_ms / 1000.0
            << "s mttr=" << faults.mttr_ms / 1000.0
            << "s horizon=" << faults.horizon_ms / 1000.0
            << "s fault-seed=" << faults.fault_seed << " timeout="
            << faults.timeout_ms << "ms attempts=" << faults.max_attempts
            << "; " << tb.february.size() << " arrivals at "
            << common::Table::num(arrival_qps, 0) << " qps\n\n";
  if (faults.pool) {
    std::cout << "topology: " << faults.pool->num_rows() << " row(s) x "
              << faults.pool->num_racks() << " rack(s) x " << nodes
              << " nodes; replica-spread="
              << core::replica_spread_name(faults.spread)
              << (faults.script.empty()
                      ? std::string()
                      : "; scripted events: " +
                            std::to_string(faults.script.size()))
              << "\n\n";
  }

  // --- Table 1: fault rate x replication degree x strategy. -------------
  std::vector<std::string> json_rows;
  common::Table table({"mttf s", "degree", "strategy", "avail", "coverage",
                       "p99 ms", "retries", "failovers", "KiB moved",
                       "replica KiB"});
  // One fault timeline per Table-1 row group: --fault-script pins the
  // single scripted timeline; otherwise the historical low/high
  // fault-rate pair, hierarchical when the topology carries domain MTTFs.
  struct Timeline {
    std::string label;
    double mttf_ms = 0.0;  // -1 when scripted
    sim::FaultSchedule schedule;
  };
  std::vector<Timeline> timelines;
  if (!faults.script.empty()) {
    timelines.push_back({"script", -1.0, faults.build_schedule(nodes)});
  } else {
    for (const double mttf_scale : {4.0, 1.0}) {
      sim::FaultScheduleConfig sched_cfg = faults.schedule_config();
      sched_cfg.mttf_ms = faults.mttf_ms * mttf_scale;
      timelines.push_back(
          {common::Table::num(sched_cfg.mttf_ms / 1000.0, 0),
           sched_cfg.mttf_ms,
           faults.pool && (sched_cfg.rack_mttf_ms > 0.0 ||
                           sched_cfg.row_mttf_ms > 0.0)
               ? sim::FaultSchedule::generate_hierarchical(*faults.pool,
                                                           sched_cfg)
               : sim::FaultSchedule::generate(nodes, sched_cfg)});
    }
  }
  for (const Timeline& timeline : timelines) {
    const sim::FaultSchedule& schedule = timeline.schedule;
    for (const int degree : {0, 1, nodes - 1}) {
      for (const std::string& strategy : strategies) {
        const core::PlacementPlan plan = optimizer.run(strategy);
        const auto map = tb.build_map(plan.keyword_to_node, nodes, degree,
                                      faults.spread, faults.pool.get());
        sim::Cluster cluster(nodes, capacity);
        cluster.install_placement(map, tb.sizes);

        sim::FaultReplayConfig replay_cfg;
        replay_cfg.faults = &schedule;
        replay_cfg.retry = faults.retry_policy();
        replay_cfg.arrival_rate_qps = arrival_qps;
        replay_cfg.arrival_seed = cfg.seed;
        const sim::FaultReplayStats stats = sim::replay_trace_with_faults(
            cluster, tb.index, tb.february, replay_cfg);

        const double replica_kib = static_cast<double>(map->bytes()) / 1024.0;
        table.add_row(
            {timeline.label,
             std::to_string(degree), strategy,
             common::Table::pct(stats.availability),
             common::Table::pct(stats.mean_coverage),
             common::Table::num(stats.base.p99_latency_ms, 2),
             std::to_string(stats.retries), std::to_string(stats.failovers),
             common::Table::num(
                 static_cast<double>(stats.base.total_bytes) / 1024, 1),
             common::Table::num(replica_kib, 1)});

        std::ostringstream row;
        row << "  {\"seed\": " << cfg.seed << ", \"threads\": " << cfg.threads
            << ", \"mttf_ms\": " << timeline.mttf_ms
            << ", \"degree\": " << degree << ", \"strategy\": \"" << strategy
            << "\", \"availability\": " << stats.availability
            << ", \"mean_coverage\": " << stats.mean_coverage
            << ", \"p99_latency_ms\": " << stats.base.p99_latency_ms
            << ", \"retries\": " << stats.retries
            << ", \"failovers\": " << stats.failovers
            << ", \"unserved_keywords\": " << stats.unserved_keywords
            << ", \"total_bytes\": " << stats.base.total_bytes
            << ", \"replica_bytes\": " << map->bytes() << "}";
        json_rows.push_back(row.str());
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(degree = replicas beyond the primary; replicas track the"
               " placement, so failover lands on the co-location-preserving"
               " node. Degree >= 1 should dominate degree 0 availability"
               " for every strategy; full replication trades storage for"
               " the transfer-free limit)\n\n";

  // --- Table 2: recovery re-placement under a migration budget. ---------
  const sim::FaultSchedule schedule = faults.build_schedule(nodes);
  // The worst instant: scan transitions for the maximum simultaneous
  // death toll (ties: earliest instant).
  double worst_time = 0.0;
  std::size_t worst_dead = 0;
  for (const sim::FaultEvent& ev : schedule.events()) {
    const std::size_t dead = schedule.dead_nodes(ev.time_ms).size();
    if (dead > worst_dead) {
      worst_dead = dead;
      worst_time = ev.time_ms;
    }
  }
  if (worst_dead == 0) {
    std::cout << "recovery: the fault schedule never kills a node within"
                 " the horizon; nothing to re-place.\n";
  } else {
    const std::vector<bool> alive = schedule.alive_mask(worst_time);
    std::cout << "recovery snapshot: t=" << common::Table::num(worst_time, 0)
              << "ms, " << worst_dead << "/" << nodes << " nodes dead\n\n";

    const core::PlacementPlan plan = optimizer.run("lprr");
    const core::CcaInstance& instance = optimizer.scoped_instance();
    core::Placement scoped(plan.scope.size());
    for (std::size_t i = 0; i < plan.scope.size(); ++i)
      scoped[i] = plan.keyword_to_node[plan.scope[i]];

    // Restoration value = query frequency: recovering a hot keyword's
    // index buys more availability per migrated byte than a cold one's.
    const std::vector<std::size_t> freq = tb.january.keyword_frequencies();
    std::vector<double> weights(plan.scope.size());
    for (std::size_t i = 0; i < plan.scope.size(); ++i)
      weights[i] = static_cast<double>(freq[plan.scope[i]]) + 1.0;

    const double avail_before =
        frozen_availability(tb.february, plan.keyword_to_node, alive);
    common::Table recovery({"budget", "lost", "recovered", "coverage",
                            "KiB migrated", "avail before", "avail after"});
    for (const double budget : {0.0, 0.05, 0.25, 1.0}) {
      core::RecoveryConfig rec_cfg;
      rec_cfg.migration_budget_fraction = budget;
      rec_cfg.seed = cfg.seed;
      const core::RecoveryResult result =
          core::RecoveryPlanner(rec_cfg).replan(instance, scoped, alive,
                                                weights);
      std::vector<int> repaired = plan.keyword_to_node;
      for (std::size_t i = 0; i < plan.scope.size(); ++i)
        repaired[plan.scope[i]] = result.placement[i];
      recovery.add_row(
          {common::Table::pct(budget), std::to_string(result.objects_lost),
           std::to_string(result.objects_recovered),
           common::Table::pct(result.coverage_restored),
           common::Table::num(result.migration.bytes_moved / 1024, 1),
           common::Table::pct(avail_before),
           common::Table::pct(
               frozen_availability(tb.february, repaired, alive))});

      std::ostringstream row;
      row << "  {\"seed\": " << cfg.seed << ", \"threads\": " << cfg.threads
          << ", \"recovery_budget\": " << budget
          << ", \"objects_lost\": " << result.objects_lost
          << ", \"objects_recovered\": " << result.objects_recovered
          << ", \"coverage_restored\": " << result.coverage_restored
          << ", \"bytes_migrated\": " << result.migration.bytes_moved
          << ", \"avail_before\": " << avail_before << ", \"avail_after\": "
          << frozen_availability(tb.february, repaired, alive) << "}";
      json_rows.push_back(row.str());
    }
    recovery.print(std::cout);
    std::cout << "\n(budget as a fraction of total scope bytes; coverage ="
                 " recovered / lost importance weight. Availability is the"
                 " evaluation trace re-scored at the frozen snapshot with"
                 " no failover — what re-placement alone restores. Tail"
                 " keywords stay hashed, so 100% needs every node or"
                 " replicas)\n";
  }

  // --- Tables 3/4: hierarchical failure domains (--topology only). ------
  if (faults.pool) {
    const sim::PoolMap& pool = *faults.pool;
    const auto gran_name = [](sim::FaultDomain d) {
      switch (d) {
        case sim::FaultDomain::kNode: return "node";
        case sim::FaultDomain::kRack: return "rack";
        case sim::FaultDomain::kRow: return "row";
      }
      return "?";
    };

    // One scripted whole-domain outage per granularity the topology
    // supports: domain 0 dead for the middle half of the horizon. Every
    // (spread, degree) cell replays the identical timeline, so the grid
    // isolates what domain-aware replica tails buy when the blast radius
    // grows from one node to a rack to a row.
    std::vector<sim::FaultDomain> granularities = {sim::FaultDomain::kNode};
    if (pool.num_racks() >= 2)
      granularities.push_back(sim::FaultDomain::kRack);
    if (pool.num_rows() >= 2) granularities.push_back(sim::FaultDomain::kRow);
    std::vector<core::ReplicaSpread> spreads = {core::ReplicaSpread::kFlat,
                                                core::ReplicaSpread::kRack};
    if (pool.num_rows() >= 2) spreads.push_back(core::ReplicaSpread::kRow);

    const std::string& strategy = strategies.back();
    const core::PlacementPlan plan = optimizer.run(strategy);
    const double crash_ms = 0.25 * faults.horizon_ms;
    const double recover_ms = 0.75 * faults.horizon_ms;

    std::cout << "\ndomain outage grid (strategy=" << strategy
              << "): domain 0 dead on ["
              << common::Table::num(crash_ms, 0) << "ms, "
              << common::Table::num(recover_ms, 0) << "ms)\n\n";

    common::Table grid({"granularity", "spread", "degree", "avail",
                        "coverage", "p99 ms", "retries", "failovers"});
    for (const sim::FaultDomain granularity : granularities) {
      std::vector<sim::DomainFaultEvent> outage;
      outage.push_back(
          {crash_ms, granularity, 0, sim::FaultEventKind::kCrash});
      outage.push_back(
          {recover_ms, granularity, 0, sim::FaultEventKind::kRecover});
      const sim::FaultSchedule domain_schedule =
          sim::FaultSchedule::from_domain_events(pool, outage);
      for (const core::ReplicaSpread spread : spreads) {
        for (const int degree : {1, 2}) {
          const auto map = tb.build_map(plan.keyword_to_node, nodes, degree,
                                        spread, &pool);
          sim::Cluster cluster(nodes, capacity);
          cluster.install_placement(map, tb.sizes);

          sim::FaultReplayConfig replay_cfg;
          replay_cfg.faults = &domain_schedule;
          replay_cfg.retry = faults.retry_policy();
          replay_cfg.arrival_rate_qps = arrival_qps;
          replay_cfg.arrival_seed = cfg.seed;
          const sim::FaultReplayStats stats = sim::replay_trace_with_faults(
              cluster, tb.index, tb.february, replay_cfg);

          grid.add_row({gran_name(granularity),
                        core::replica_spread_name(spread),
                        std::to_string(degree),
                        common::Table::pct(stats.availability),
                        common::Table::pct(stats.mean_coverage),
                        common::Table::num(stats.base.p99_latency_ms, 2),
                        std::to_string(stats.retries),
                        std::to_string(stats.failovers)});

          std::ostringstream row;
          row << "  {\"seed\": " << cfg.seed << ", \"threads\": "
              << cfg.threads << ", \"granularity\": \""
              << gran_name(granularity) << "\", \"spread\": \""
              << core::replica_spread_name(spread) << "\", \"degree\": "
              << degree << ", \"availability\": " << stats.availability
              << ", \"mean_coverage\": " << stats.mean_coverage
              << ", \"p99_latency_ms\": " << stats.base.p99_latency_ms
              << ", \"retries\": " << stats.retries
              << ", \"failovers\": " << stats.failovers
              << ", \"unserved_keywords\": " << stats.unserved_keywords
              << ", \"replica_bytes\": " << map->bytes() << "}";
          json_rows.push_back(row.str());
        }
      }
    }
    grid.print(std::cout);
    std::cout << "\n(the flat tail (primary+r) mod N stays inside a"
                 " rack-major-numbered rack for small r, so a rack loss"
                 " kills primary and replicas together; rack/row spread"
                 " places the tail across domains and should dominate flat"
                 " at rack/row granularity for degree >= 1)\n\n";

    // --- Table 4: rebuild of the dead domain, funnel vs declustered. ----
    // At mid-outage the dead domain's scope objects are re-placed under
    // an unlimited budget; the two modes differ only in destination
    // choice, which is exactly what the makespan measures.
    const core::PlacementPlan rec_plan = optimizer.run("lprr");
    const core::CcaInstance& instance = optimizer.scoped_instance();
    core::Placement scoped(rec_plan.scope.size());
    for (std::size_t i = 0; i < rec_plan.scope.size(); ++i)
      scoped[i] = rec_plan.keyword_to_node[rec_plan.scope[i]];
    const std::vector<std::size_t> freq = tb.january.keyword_frequencies();
    std::vector<double> weights(rec_plan.scope.size());
    for (std::size_t i = 0; i < rec_plan.scope.size(); ++i)
      weights[i] = static_cast<double>(freq[rec_plan.scope[i]]) + 1.0;

    common::Table rebuild({"granularity", "mode", "lost", "recovered",
                           "destinations", "makespan ms"});
    for (const sim::FaultDomain granularity : granularities) {
      std::vector<sim::DomainFaultEvent> outage;
      outage.push_back(
          {crash_ms, granularity, 0, sim::FaultEventKind::kCrash});
      outage.push_back(
          {recover_ms, granularity, 0, sim::FaultEventKind::kRecover});
      const sim::FaultSchedule domain_schedule =
          sim::FaultSchedule::from_domain_events(pool, outage);
      const std::vector<bool> alive =
          domain_schedule.alive_mask(0.5 * faults.horizon_ms);

      for (const core::RebuildMode mode :
           {core::RebuildMode::kSuccessor, core::RebuildMode::kDeclustered}) {
        const char* mode_name =
            mode == core::RebuildMode::kSuccessor ? "successor"
                                                  : "declustered";
        core::RecoveryConfig rec_cfg;
        rec_cfg.migration_budget_fraction = 1.0;
        rec_cfg.capacity_headroom = 2.0;
        rec_cfg.seed = cfg.seed;
        rec_cfg.rebuild_mode = mode;
        rec_cfg.rebuild_mbps = faults.rebuild_mbps;
        const core::RecoveryResult result =
            core::RecoveryPlanner(rec_cfg).replan(instance, scoped, alive,
                                                  weights);
        rebuild.add_row({gran_name(granularity), mode_name,
                         std::to_string(result.objects_lost),
                         std::to_string(result.objects_recovered),
                         std::to_string(result.rebuild_destinations),
                         common::Table::num(result.rebuild_makespan_ms, 3)});

        std::ostringstream row;
        row << "  {\"seed\": " << cfg.seed << ", \"threads\": "
            << cfg.threads << ", \"granularity\": \""
            << gran_name(granularity) << "\", \"rebuild_mode\": \""
            << mode_name << "\", \"objects_lost\": " << result.objects_lost
            << ", \"objects_recovered\": " << result.objects_recovered
            << ", \"rebuild_destinations\": " << result.rebuild_destinations
            << ", \"rebuild_makespan_ms\": " << result.rebuild_makespan_ms
            << ", \"bytes_migrated\": " << result.migration.bytes_moved
            << "}";
        json_rows.push_back(row.str());
      }
    }
    rebuild.print(std::cout);
    std::cout << "\n(makespan = largest per-destination rebuild slice over "
              << common::Table::num(faults.rebuild_mbps, 0)
              << " Mb/s; the successor funnel ingests a whole domain"
                 " through one survivor, declustering fans the same bytes"
                 " across every survivor with headroom)\n";
  }

  if (!cfg.json_path.empty() && !json_rows.empty()) {
    std::ofstream out(cfg.json_path);
    CCA_CHECK_MSG(out.good(), "cannot write JSON log to " << cfg.json_path);
    out << "[\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i)
      out << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    out << "]\n";
    std::cout << "\nwrote " << json_rows.size() << " cells to "
              << cfg.json_path << "\n";
  }
  bench::write_metrics(cfg);
  return 0;
}
