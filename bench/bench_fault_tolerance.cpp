// Fault tolerance — availability and recovery under fail-stop faults.
//
// The paper's evaluation assumes a healthy cluster; its Sec. 5 pointer
// to replication-degree customization only matters when nodes can die.
// This harness injects a seeded fail-stop fault timeline (sim/faults.hpp)
// into the trace replay and asks two questions:
//
//   Table 1 — serving under faults: fault rate x replication degree x
//   strategy. Replicas follow the placement (core::PlacementMap replica
//   sets), so failover preserves the co-location the optimizer paid for;
//   degree 0
//   is the replica-free baseline, degree N-1 the full-replication limit.
//   Availability counts fully-served queries; coverage credits partial
//   results; p99 includes the retry/timeout penalties queries paid
//   discovering dead replicas.
//
//   Table 2 — recovery: at the worst instant of the timeline (most nodes
//   down simultaneously), core::RecoveryPlanner re-places the dead-hosted
//   scope objects onto survivors under a migration-byte budget sweep,
//   weighting objects by query frequency. The availability column
//   re-scores the evaluation trace against the repaired placement at
//   that frozen instant.
//
// The same fault schedule is shared by every strategy and degree of a
// sweep — comparisons see identical failure timelines.
//
//   ./bench_fault_tolerance [--nodes=10] [--scope=1000]
//       [--strategies=random-hash,lprr]
//       [--mttf=10000] [--mttr=1000] [--fault-horizon=60000]
//       [--fault-seed=1] [--timeout-ms=5] [--max-attempts=3]
//       [testbed flags]
//
// Output is bit-identical for any --threads (the determinism contract of
// the parallel substrate extends through the fault layer; enforced by the
// smoke suite).
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/recovery.hpp"
#include "sim/faults.hpp"
#include "testbed.hpp"

using namespace cca;

namespace {

/// Fraction of trace queries whose every keyword's primary is alive under
/// `keyword_to_node` at a frozen liveness snapshot (no failover — the
/// recovery table isolates what re-placement alone restores).
double frozen_availability(const trace::QueryTrace& trace,
                           const std::vector<int>& keyword_to_node,
                           const std::vector<bool>& alive) {
  if (trace.empty()) return 1.0;
  std::size_t served = 0;
  for (const trace::Query& query : trace.queries()) {
    bool all_alive = true;
    for (const trace::KeywordId k : query.keywords)
      if (!alive[static_cast<std::size_t>(keyword_to_node[k])]) {
        all_alive = false;
        break;
      }
    if (all_alive) ++served;
  }
  return static_cast<double>(served) / static_cast<double>(trace.size());
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const bench::FaultFlags faults = bench::FaultFlags::from_cli(args);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1000));
  const std::vector<std::string> strategies = core::parse_strategy_list(
      args.get_string("strategies", "random-hash,lprr"));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Fault tolerance — availability and recovery");

  const core::PartialOptimizerConfig opt_cfg = tb.optimizer_config(nodes,
                                                                   scope);
  const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
  const double capacity =
      opt_cfg.capacity_slack * tb.total_index_bytes / nodes;

  // Arrivals paced so the replay (one arrival per evaluation query)
  // spans the fault horizon — queries arriving after it would see an
  // always-healthy cluster.
  const double arrival_qps =
      static_cast<double>(tb.february.size()) * 1000.0 / faults.horizon_ms;
  std::cout << "fault model: mttf=" << faults.mttf_ms / 1000.0
            << "s mttr=" << faults.mttr_ms / 1000.0
            << "s horizon=" << faults.horizon_ms / 1000.0
            << "s fault-seed=" << faults.fault_seed << " timeout="
            << faults.timeout_ms << "ms attempts=" << faults.max_attempts
            << "; " << tb.february.size() << " arrivals at "
            << common::Table::num(arrival_qps, 0) << " qps\n\n";

  // --- Table 1: fault rate x replication degree x strategy. -------------
  std::vector<std::string> json_rows;
  common::Table table({"mttf s", "degree", "strategy", "avail", "coverage",
                       "p99 ms", "retries", "failovers", "KiB moved",
                       "replica KiB"});
  for (const double mttf_scale : {4.0, 1.0}) {
    sim::FaultScheduleConfig sched_cfg = faults.schedule_config();
    sched_cfg.mttf_ms = faults.mttf_ms * mttf_scale;
    const sim::FaultSchedule schedule =
        sim::FaultSchedule::generate(nodes, sched_cfg);
    for (const int degree : {0, 1, nodes - 1}) {
      for (const std::string& strategy : strategies) {
        const core::PlacementPlan plan = optimizer.run(strategy);
        const auto map = tb.build_map(plan.keyword_to_node, nodes, degree);
        sim::Cluster cluster(nodes, capacity);
        cluster.install_placement(map, tb.sizes);

        sim::FaultReplayConfig replay_cfg;
        replay_cfg.faults = &schedule;
        replay_cfg.retry = faults.retry_policy();
        replay_cfg.arrival_rate_qps = arrival_qps;
        replay_cfg.arrival_seed = cfg.seed;
        const sim::FaultReplayStats stats = sim::replay_trace_with_faults(
            cluster, tb.index, tb.february, replay_cfg);

        const double replica_kib = static_cast<double>(map->bytes()) / 1024.0;
        table.add_row(
            {common::Table::num(sched_cfg.mttf_ms / 1000.0, 0),
             std::to_string(degree), strategy,
             common::Table::pct(stats.availability),
             common::Table::pct(stats.mean_coverage),
             common::Table::num(stats.base.p99_latency_ms, 2),
             std::to_string(stats.retries), std::to_string(stats.failovers),
             common::Table::num(
                 static_cast<double>(stats.base.total_bytes) / 1024, 1),
             common::Table::num(replica_kib, 1)});

        std::ostringstream row;
        row << "  {\"seed\": " << cfg.seed << ", \"threads\": " << cfg.threads
            << ", \"mttf_ms\": " << sched_cfg.mttf_ms
            << ", \"degree\": " << degree << ", \"strategy\": \"" << strategy
            << "\", \"availability\": " << stats.availability
            << ", \"mean_coverage\": " << stats.mean_coverage
            << ", \"p99_latency_ms\": " << stats.base.p99_latency_ms
            << ", \"retries\": " << stats.retries
            << ", \"failovers\": " << stats.failovers
            << ", \"unserved_keywords\": " << stats.unserved_keywords
            << ", \"total_bytes\": " << stats.base.total_bytes
            << ", \"replica_bytes\": " << map->bytes() << "}";
        json_rows.push_back(row.str());
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(degree = replicas beyond the primary; replicas track the"
               " placement, so failover lands on the co-location-preserving"
               " node. Degree >= 1 should dominate degree 0 availability"
               " for every strategy; full replication trades storage for"
               " the transfer-free limit)\n\n";

  // --- Table 2: recovery re-placement under a migration budget. ---------
  const sim::FaultSchedule schedule =
      sim::FaultSchedule::generate(nodes, faults.schedule_config());
  // The worst instant: scan transitions for the maximum simultaneous
  // death toll (ties: earliest instant).
  double worst_time = 0.0;
  std::size_t worst_dead = 0;
  for (const sim::FaultEvent& ev : schedule.events()) {
    const std::size_t dead = schedule.dead_nodes(ev.time_ms).size();
    if (dead > worst_dead) {
      worst_dead = dead;
      worst_time = ev.time_ms;
    }
  }
  if (worst_dead == 0) {
    std::cout << "recovery: the fault schedule never kills a node within"
                 " the horizon; nothing to re-place.\n";
  } else {
    const std::vector<bool> alive = schedule.alive_mask(worst_time);
    std::cout << "recovery snapshot: t=" << common::Table::num(worst_time, 0)
              << "ms, " << worst_dead << "/" << nodes << " nodes dead\n\n";

    const core::PlacementPlan plan = optimizer.run("lprr");
    const core::CcaInstance& instance = optimizer.scoped_instance();
    core::Placement scoped(plan.scope.size());
    for (std::size_t i = 0; i < plan.scope.size(); ++i)
      scoped[i] = plan.keyword_to_node[plan.scope[i]];

    // Restoration value = query frequency: recovering a hot keyword's
    // index buys more availability per migrated byte than a cold one's.
    const std::vector<std::size_t> freq = tb.january.keyword_frequencies();
    std::vector<double> weights(plan.scope.size());
    for (std::size_t i = 0; i < plan.scope.size(); ++i)
      weights[i] = static_cast<double>(freq[plan.scope[i]]) + 1.0;

    const double avail_before =
        frozen_availability(tb.february, plan.keyword_to_node, alive);
    common::Table recovery({"budget", "lost", "recovered", "coverage",
                            "KiB migrated", "avail before", "avail after"});
    for (const double budget : {0.0, 0.05, 0.25, 1.0}) {
      core::RecoveryConfig rec_cfg;
      rec_cfg.migration_budget_fraction = budget;
      rec_cfg.seed = cfg.seed;
      const core::RecoveryResult result =
          core::RecoveryPlanner(rec_cfg).replan(instance, scoped, alive,
                                                weights);
      std::vector<int> repaired = plan.keyword_to_node;
      for (std::size_t i = 0; i < plan.scope.size(); ++i)
        repaired[plan.scope[i]] = result.placement[i];
      recovery.add_row(
          {common::Table::pct(budget), std::to_string(result.objects_lost),
           std::to_string(result.objects_recovered),
           common::Table::pct(result.coverage_restored),
           common::Table::num(result.migration.bytes_moved / 1024, 1),
           common::Table::pct(avail_before),
           common::Table::pct(
               frozen_availability(tb.february, repaired, alive))});

      std::ostringstream row;
      row << "  {\"seed\": " << cfg.seed << ", \"threads\": " << cfg.threads
          << ", \"recovery_budget\": " << budget
          << ", \"objects_lost\": " << result.objects_lost
          << ", \"objects_recovered\": " << result.objects_recovered
          << ", \"coverage_restored\": " << result.coverage_restored
          << ", \"bytes_migrated\": " << result.migration.bytes_moved
          << ", \"avail_before\": " << avail_before << ", \"avail_after\": "
          << frozen_availability(tb.february, repaired, alive) << "}";
      json_rows.push_back(row.str());
    }
    recovery.print(std::cout);
    std::cout << "\n(budget as a fraction of total scope bytes; coverage ="
                 " recovered / lost importance weight. Availability is the"
                 " evaluation trace re-scored at the frozen snapshot with"
                 " no failover — what re-placement alone restores. Tail"
                 " keywords stay hashed, so 100% needs every node or"
                 " replicas)\n";
  }

  if (!cfg.json_path.empty() && !json_rows.empty()) {
    std::ofstream out(cfg.json_path);
    CCA_CHECK_MSG(out.good(), "cannot write JSON log to " << cfg.json_path);
    out << "[\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i)
      out << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    out << "]\n";
    std::cout << "\nwrote " << json_rows.size() << " cells to "
              << cfg.json_path << "\n";
  }
  bench::write_metrics(cfg);
  return 0;
}
