"""Validates a bench_churn --json grid dump.

Checks that the dump is valid JSON with the per-cell schema and that
coverage is strict: both hash tails appear, every strategy appears under
BOTH tails, and every (tail, strategy) cell carries the same churn
script (equal transition counts — a missing or truncated cell fails).

On top of coverage it asserts the consistent-hashing headline on every
grow transition with a non-trivial tail: the jump tail moves a small
fraction of its hash-ruled keywords (< 0.5 — expectation 1/(N+1)), the
md5 tail reshuffles most of them (> 0.5 — expectation N/(N+1)), and per
strategy the jump cell moves strictly fewer tail keywords than the md5
cell on the same event.

Usage: python3 check_churn_grid.py <grid.json>
"""
import json
import sys

REQUIRED = {
    "seed", "threads", "tail", "strategy", "nodes", "scope", "queries",
    "total_bytes", "mean_bytes_per_query", "p99_bytes_per_query",
    "local_queries", "final_epoch", "final_nodes", "wall_ms", "transitions",
}

TRANSITION_REQUIRED = {
    "from_epoch", "to_epoch", "time_ms", "nodes_before", "nodes_after",
    "moved_objects", "moved_bytes", "tail_objects", "moved_tail_objects",
    "disrupted_queries",
}

# Only judge the headline where the tail is big enough to behave
# statistically (the expectation arguments are over many keywords).
MIN_TAIL = 50


def tail_fraction(transition):
    return transition["moved_tail_objects"] / transition["tail_objects"]


def main(path):
    with open(path) as f:
        cells = json.load(f)
    if not cells:
        raise SystemExit("churn grid dump is empty")
    by_cell = {}
    for cell in cells:
        missing = REQUIRED - set(cell)
        if missing:
            raise SystemExit(f"cell {cell} missing keys {sorted(missing)}")
        if cell["tail"] not in ("md5", "jump"):
            raise SystemExit(f"unknown tail {cell['tail']!r}")
        if cell["queries"] <= 0:
            raise SystemExit(f"cell replayed no queries: {cell}")
        key = (cell["tail"], cell["strategy"])
        if key in by_cell:
            raise SystemExit(f"duplicate cell {key}")
        for t in cell["transitions"]:
            missing = TRANSITION_REQUIRED - set(t)
            if missing:
                raise SystemExit(
                    f"transition {t} missing keys {sorted(missing)}")
            if t["to_epoch"] != t["from_epoch"] + 1:
                raise SystemExit(f"non-consecutive epochs: {t}")
        epochs = [t["to_epoch"] for t in cell["transitions"]]
        if cell["final_epoch"] != (epochs[-1] if epochs else 0):
            raise SystemExit(f"final_epoch disagrees with transitions: {cell}")
        by_cell[key] = cell

    tails = {tail for tail, _ in by_cell}
    strategies = {strategy for _, strategy in by_cell}
    if tails != {"md5", "jump"}:
        raise SystemExit(f"grid lacks a hash tail: only {sorted(tails)}")
    for strategy in sorted(strategies):
        for tail in ("md5", "jump"):
            if (tail, strategy) not in by_cell:
                raise SystemExit(f"missing cell ({tail}, {strategy})")
    swaps = {key: len(cell["transitions"]) for key, cell in by_cell.items()}
    if len(set(swaps.values())) != 1:
        raise SystemExit(f"cells ran different churn scripts: {swaps}")

    # The headline: per strategy and grow event, jump barely moves its
    # tail while md5 reshuffles it.
    grows_judged = 0
    for strategy in sorted(strategies):
        md5_cell = by_cell[("md5", strategy)]
        jump_cell = by_cell[("jump", strategy)]
        for md5_t, jump_t in zip(md5_cell["transitions"],
                                 jump_cell["transitions"]):
            grow = md5_t["nodes_after"] > md5_t["nodes_before"]
            if not grow or min(md5_t["tail_objects"],
                               jump_t["tail_objects"]) < MIN_TAIL:
                continue
            md5_frac, jump_frac = tail_fraction(md5_t), tail_fraction(jump_t)
            if jump_frac >= 0.5:
                raise SystemExit(
                    f"{strategy}: jump tail moved {jump_frac:.2f} on a grow "
                    f"(expected ~1/N): {jump_t}")
            if md5_frac <= 0.5:
                raise SystemExit(
                    f"{strategy}: md5 tail moved only {md5_frac:.2f} on a "
                    f"grow (expected ~(N-1)/N): {md5_t}")
            if jump_frac >= md5_frac:
                raise SystemExit(
                    f"{strategy}: jump ({jump_frac:.2f}) did not beat md5 "
                    f"({md5_frac:.2f}) on a grow event")
            grows_judged += 1
    total_swaps = next(iter(swaps.values()))
    if total_swaps > 0 and grows_judged == 0:
        raise SystemExit(
            "churn script had swaps but no judgeable grow event "
            "(add a grow with a >= 50-keyword tail)")
    print(f"{len(cells)} cells, {len(strategies)} strategies x 2 tails, "
          f"{total_swaps} swaps each; judged {grows_judged} grow events "
          f"(jump < 0.5 <= md5 tail movement everywhere)")


if __name__ == "__main__":
    main(sys.argv[1])
