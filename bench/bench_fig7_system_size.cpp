// Figure 7 reproduction: communication cost (normalized to random hash
// placement) vs system size, at a fixed optimization scope.
//
// Paper reference points: LPRR saves 73-86% across 10-100 nodes, with
// savings peaking around 40-50 nodes and shrinking at larger sizes;
// greedy only helps while per-node capacity is large (few nodes).
//
//   ./bench_fig7_system_size [--scope=1500] [--max-nodes=100]
//                            [--node-step=10] [--seeds=3] [testbed flags]
//
// With --seeds=K each row averages K independent testbeds; the +- column
// is the 95% CI half-width on the LPRR normalized cost.
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1500));
  const int max_nodes = static_cast<int>(args.get_int("max-nodes", 100));
  const int node_step = static_cast<int>(args.get_int("node-step", 10));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const bool csv = args.get_bool("csv", false);
  args.reject_unused();

  std::cout << "Figure 7 — communication vs system size\n"
            << "optimization scope: top " << scope << " keywords; averaging "
            << seeds << " seeds\n\n";

  std::vector<int> node_counts;
  for (int nodes = node_step; nodes <= max_nodes; nodes += node_step)
    node_counts.push_back(nodes);
  std::vector<common::RunningStats> random_kib(node_counts.size()),
      greedy_norm(node_counts.size()), lprr_norm(node_counts.size()),
      lprr_imbalance(node_counts.size());

  for (int s = 0; s < seeds; ++s) {
    bench::TestbedConfig seeded = cfg;
    seeded.seed = cfg.seed + static_cast<std::uint64_t>(s);
    const bench::Testbed tb = bench::Testbed::build(seeded);
    if (s == 0) tb.print_banner("(first testbed)");
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
      const int nodes = node_counts[i];
      // The random baseline depends on the node count: re-measure.
      const sim::ReplayStats random =
          tb.measure(core::Strategy::kRandom, nodes, 1);
      const sim::ReplayStats greedy =
          tb.measure(core::Strategy::kGreedy, nodes, scope);
      const sim::ReplayStats lprr =
          tb.measure(core::Strategy::kLprr, nodes, scope);
      random_kib[i].add(static_cast<double>(random.total_bytes) / 1024);
      greedy_norm[i].add(static_cast<double>(greedy.total_bytes) /
                         static_cast<double>(random.total_bytes));
      lprr_norm[i].add(static_cast<double>(lprr.total_bytes) /
                       static_cast<double>(random.total_bytes));
      lprr_imbalance[i].add(lprr.storage_imbalance);
    }
  }

  common::Table table({"nodes", "random KiB", "greedy norm. cost",
                       "lprr norm. cost", "+-", "lprr saving",
                       "lprr storage imbalance"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    table.add_row({std::to_string(node_counts[i]),
                   common::Table::num(random_kib[i].mean(), 0),
                   common::Table::num(greedy_norm[i].mean(), 3),
                   common::Table::num(lprr_norm[i].mean(), 3),
                   common::Table::num(lprr_norm[i].ci95_halfwidth(), 3),
                   common::Table::pct(1.0 - lprr_norm[i].mean()),
                   common::Table::num(lprr_imbalance[i].mean(), 2)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(normalized to random hash at the same node count;"
               " paper Fig. 7: LPRR 73-86% savings, greedy fading as nodes"
               " grow)\n";
  return 0;
}
