// Figure 7 reproduction: communication cost (normalized to random hash
// placement) vs system size, at a fixed optimization scope.
//
// Paper reference points: LPRR saves 73-86% across 10-100 nodes, with
// savings peaking around 40-50 nodes and shrinking at larger sizes;
// greedy only helps while per-node capacity is large (few nodes).
//
//   ./bench_fig7_system_size [--scope=1500] [--max-nodes=100]
//                            [--node-step=10] [--seeds=3] [--threads=N]
//                            [--json=path] [testbed flags]
//
// With --seeds=K each row averages K independent testbeds; the +- column
// is the 95% CI half-width on the LPRR normalized cost.
//
// The (seed x nodes) grid cells are independent and evaluate concurrently;
// accumulation happens in fixed seed order after the join, so output is
// identical for any --threads.
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 1500));
  const int max_nodes = static_cast<int>(args.get_int("max-nodes", 100));
  const int node_step = static_cast<int>(args.get_int("node-step", 10));
  const int seeds = cfg.seeds;
  args.reject_unused();

  std::cout << "Figure 7 — communication vs system size\n"
            << "optimization scope: top " << scope << " keywords; averaging "
            << seeds << " seeds\n\n";

  std::vector<int> node_counts;
  for (int nodes = node_step; nodes <= max_nodes; nodes += node_step)
    node_counts.push_back(nodes);

  // Phase 1 — one testbed per seed, concurrently (unique_ptr because
  // Testbed is not default-constructible, which parallel_map's
  // index-ordered result vector requires).
  const auto testbeds = common::parallel_map(
      static_cast<std::size_t>(seeds), [&](std::size_t s) {
        return std::make_unique<bench::Testbed>(
            bench::Testbed::build(cfg.with_seed_offset(s)));
      });
  testbeds[0]->print_banner("(first testbed)");

  // Phase 2 — every (seed, node-count) cell measures its three
  // strategies. The random baseline depends on the node count, so it is
  // part of the cell.
  struct Cell {
    bench::CellResult random, greedy, lprr;
  };
  const auto cells = common::parallel_map(
      static_cast<std::size_t>(seeds) * node_counts.size(),
      [&](std::size_t i) {
        const bench::Testbed& tb = *testbeds[i / node_counts.size()];
        const int nodes = node_counts[i % node_counts.size()];
        return Cell{tb.measure_cell("random-hash", nodes, 1),
                    tb.measure_cell("greedy", nodes, scope),
                    tb.measure_cell("lprr", nodes, scope)};
      });

  std::vector<common::RunningStats> random_kib(node_counts.size()),
      greedy_norm(node_counts.size()), lprr_norm(node_counts.size()),
      lprr_imbalance(node_counts.size());
  bench::JsonLog json(cfg.json_path);
  for (int s = 0; s < seeds; ++s) {
    const bench::TestbedConfig seeded =
        cfg.with_seed_offset(static_cast<std::uint64_t>(s));
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
      const Cell& cell =
          cells[static_cast<std::size_t>(s) * node_counts.size() + i];
      const double random_bytes =
          static_cast<double>(cell.random.stats.total_bytes);
      random_kib[i].add(random_bytes / 1024);
      greedy_norm[i].add(
          static_cast<double>(cell.greedy.stats.total_bytes) / random_bytes);
      lprr_norm[i].add(
          static_cast<double>(cell.lprr.stats.total_bytes) / random_bytes);
      lprr_imbalance[i].add(cell.lprr.stats.storage_imbalance);
      json.add(seeded, "random-hash", node_counts[i], 1, cell.random);
      json.add(seeded, "greedy", node_counts[i], scope, cell.greedy);
      json.add(seeded, "lprr", node_counts[i], scope, cell.lprr);
    }
  }

  common::Table table({"nodes", "random KiB", "greedy norm. cost",
                       "lprr norm. cost", "+-", "lprr saving",
                       "lprr storage imbalance"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    table.add_row({std::to_string(node_counts[i]),
                   common::Table::num(random_kib[i].mean(), 0),
                   common::Table::num(greedy_norm[i].mean(), 3),
                   common::Table::num(lprr_norm[i].mean(), 3),
                   common::Table::num(lprr_norm[i].ci95_halfwidth(), 3),
                   common::Table::pct(1.0 - lprr_norm[i].mean()),
                   common::Table::num(lprr_imbalance[i].mean(), 2)});
  }
  bench::print_table(table, cfg);
  std::cout << "\n(normalized to random hash at the same node count;"
               " paper Fig. 7: LPRR 73-86% savings, greedy fading as nodes"
               " grow)\n";
  json.write();
  bench::write_metrics(cfg);
  return 0;
}
