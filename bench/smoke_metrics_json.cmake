# Smoke contract: --metrics and --json emit valid JSON, and the metrics
# dump carries the headline instrumentation (LP iterations, rounding
# trials, replayed bytes). Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DPYTHON=... -DOUT_DIR=... -P <this>
set(metrics_file ${OUT_DIR}/smoke_contract_metrics.json)
set(cells_file ${OUT_DIR}/smoke_contract_cells.json)

execute_process(
  COMMAND ${BENCH} ${TB_ARGS} --threads=2
    --metrics=${metrics_file} --json=${cells_file}
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench failed with exit code ${rc}")
endif()

foreach(file ${metrics_file} ${cells_file})
  execute_process(
    COMMAND ${PYTHON} -m json.tool ${file}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${file} is not valid JSON: ${err}")
  endif()
endforeach()

file(READ ${metrics_file} metrics)
foreach(key
    lp.solves
    lp.iterations.phase1
    lp.iterations.phase2
    core.rounding.trials
    core.rounding.winning_trial
    sim.replay.bytes.intersection
    search.postings.fetched
    core.optimizer.strategy)
  if(NOT metrics MATCHES "\"${key}\"")
    message(FATAL_ERROR "metrics dump is missing \"${key}\"")
  endif()
endforeach()
