# Smoke contract: the hierarchical failure-domain path. With a rack/row
# topology the fault bench's stdout is byte-identical for
# --threads=1/2/8 (the determinism contract extends through domain-fault
# expansion and spread tails), and its --json dump passes
# check_fault_grid.py — full outage-grid coverage, availability monotone
# in degree, rack-spread beating flat under a rack loss, and declustered
# rebuild beating the successor funnel. Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -DPYTHON=... -DCHECKER=...
#         -DOUT_DIR=... -P <this>
set(grid_file ${OUT_DIR}/smoke_fault_grid.json)

foreach(threads 1 2 8)
  execute_process(
    COMMAND ${BENCH} ${TB_ARGS} --threads=${threads}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out_${threads} ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "bench_fault_tolerance --threads=${threads} failed with ${rc}")
  endif()
  # The banner names the thread count; strip that one line before
  # comparing so the contract covers every computed byte.
  string(REGEX REPLACE "threads=${threads}" "threads=T"
    out_${threads} "${out_${threads}}")
endforeach()
if(NOT out_1 STREQUAL out_2 OR NOT out_2 STREQUAL out_8)
  message(FATAL_ERROR
    "domain-fault stdout differs across --threads=1/2/8; the fault "
    "layer broke the determinism contract")
endif()

execute_process(
  COMMAND ${BENCH} ${TB_ARGS} --threads=2 --json=${grid_file}
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_fault_tolerance --json failed with ${rc}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${grid_file}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fault grid contract failed: ${out}${err}")
endif()
message(STATUS "${out}")
