# Smoke contract for the streaming correlation miner (bench_fig2):
#   * sketch-miner stdout is byte-identical across --threads=1/2/8 (the
#     sharded-merge determinism claim, end to end through a bench binary),
#   * the sketch's recall@K against the exact counter is printed and is
#     at least 0.95 at tier-1 scale,
#   * --miner=exact is the default: spelling it out changes no byte,
#   * (with Python) the --json cell dump is valid JSON and carries the
#     miner fields.
# Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... [-DPYTHON=...] -DOUT_DIR=... -P <this>
function(run_bench out_var)
  execute_process(
    COMMAND ${BENCH} ${TB_ARGS} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench ${ARGN} failed with exit code ${rc}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_bench(sketch_t1 --threads=1 --miner=sketch --recall-check)
run_bench(sketch_t2 --threads=2 --miner=sketch --recall-check)
run_bench(sketch_t8 --threads=8 --miner=sketch --recall-check)

# Only the banner's "threads=N" token may differ (fig2 currently prints no
# such token, so this is belt and braces).
foreach(var sketch_t1 sketch_t2 sketch_t8)
  string(REGEX REPLACE "threads=[0-9]+" "threads=X" ${var}_norm "${${var}}")
endforeach()
if(NOT sketch_t1_norm STREQUAL sketch_t2_norm)
  message(FATAL_ERROR
    "sketch miner stdout differs between --threads=1 and --threads=2")
endif()
if(NOT sketch_t8_norm STREQUAL sketch_t2_norm)
  message(FATAL_ERROR
    "sketch miner stdout differs between --threads=8 and --threads=2")
endif()

# Recall floor. The bench prints "recall@K vs exact: 0.ddd"; 0.95+ means
# the bounded candidate set retained (nearly) the whole exact top-k head.
if(NOT sketch_t2 MATCHES "recall@[0-9]+ vs exact: ([01]\\.[0-9]+)")
  message(FATAL_ERROR "sketch run printed no recall line:\n${sketch_t2}")
endif()
set(recall ${CMAKE_MATCH_1})
if(NOT recall MATCHES "^(1\\.[0-9]+|0\\.9[5-9][0-9]*)$")
  message(FATAL_ERROR "sketch recall ${recall} is below the 0.95 contract")
endif()

# --miner=exact is the default; making it explicit must change no byte.
run_bench(default_t2 --threads=2)
run_bench(exact_t2 --threads=2 --miner=exact)
if(NOT default_t2 STREQUAL exact_t2)
  message(FATAL_ERROR "--miner=exact is not byte-identical to the default")
endif()

# An unknown miner is a hard CLI error, not a silent fallback.
execute_process(
  COMMAND ${BENCH} ${TB_ARGS} --threads=2 --miner=bogus
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "--miner=bogus was accepted")
endif()

# --json cell dump: valid JSON, carrying the miner/recall fields.
if(DEFINED PYTHON)
  set(cells_file ${OUT_DIR}/smoke_miner_cells.json)
  run_bench(json_run --threads=2 --miner=sketch --recall-check
    --json=${cells_file})
  execute_process(
    COMMAND ${PYTHON} -m json.tool ${cells_file}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${cells_file} is not valid JSON: ${err}")
  endif()
  file(READ ${cells_file} cells)
  foreach(key miner miner_bytes exact_bytes recall_vs_exact peak_rss_kib
      changed_fraction rows)
    if(NOT cells MATCHES "\"${key}\"")
      message(FATAL_ERROR "--json dump is missing \"${key}\"")
    endif()
  endforeach()
endif()
