// Ablation A — repeated randomized rounding (Sec. 2.3: "repeat the
// randomized rounding several times and pick the best solution").
//
// Sweeps the number of rounding trials K and the prefer-feasible policy,
// reporting the chosen solution's modeled cost and realized load factor
// (mean over independent seeds). Shows what K buys: with the degenerate
// zero-objective relaxation the modeled cost is flat at 0, so the entire
// benefit of repetition is in realized load balance.
//
//   ./bench_ablation_rounding [--scope=800] [--nodes=10] [--repeats=10]
//                             [testbed flags]
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/component_solver.hpp"
#include "core/rounding.hpp"
#include "testbed.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const bench::TestbedConfig cfg = bench::TestbedConfig::from_cli(args);
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 800));
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const int repeats = static_cast<int>(args.get_int("repeats", 10));
  args.reject_unused();

  const bench::Testbed tb = bench::Testbed::build(cfg);
  tb.print_banner("Ablation A — best-of-K randomized rounding");

  // Build the scoped instance once via the optimizer's machinery.
  core::PartialOptimizerConfig opt_cfg;
  opt_cfg.num_nodes = nodes;
  opt_cfg.scope = scope;
  opt_cfg.seed = cfg.seed;
  const core::PartialOptimizer optimizer(tb.january, tb.sizes, opt_cfg);
  const core::CcaInstance& instance = optimizer.scoped_instance();
  std::cout << "scoped instance: " << instance.num_objects() << " objects, "
            << instance.pairs().size() << " pairs, total pair cost "
            << common::Table::num(instance.total_pair_cost(), 1) << "\n\n";

  common::Table table({"solver", "trials K", "policy", "mean cost",
                       "mean max-load", "feasible roundings"});
  // Two fractional inputs: the literal LP optimum (whole components,
  // objective 0, collapses) and the capacity-split groups the pipeline
  // uses by default.
  for (const double fill : {0.0, 1.0}) {
    const core::FractionalPlacement fractional =
        core::ComponentLpSolver(core::ComponentSolverOptions{cfg.seed, fill})
            .solve(instance);
    const std::string solver = fill > 0.0 ? "split-groups" : "literal-LP";
    for (const bool prefer_feasible : {false, true}) {
      for (const int trials : {1, 4, 16, 64}) {
        common::RunningStats cost, load;
        int feasible = 0;
        for (int rep = 0; rep < repeats; ++rep) {
          common::Rng rng(cfg.seed * 1000 + static_cast<std::uint64_t>(rep));
          const core::RoundingResult result = core::round_best_of(
              fractional, instance,
              core::RoundingPolicy{trials, prefer_feasible}, rng);
          cost.add(result.cost);
          load.add(result.max_load_factor);
          if (result.feasible) ++feasible;
        }
        table.add_row({solver, std::to_string(trials),
                       prefer_feasible ? "prefer-feasible" : "cost-only",
                       common::Table::num(cost.mean(), 1),
                       common::Table::num(load.mean(), 3),
                       std::to_string(feasible) + "/" +
                           std::to_string(repeats)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(cost is the modeled objective (1) on the scoped"
               " instance; max-load is realized load / capacity. The"
               " literal LP optimum always rounds to cost 0 but collapses"
               " whole components onto single nodes; the split-group input"
               " pays cut cost to keep realized loads near capacity.)\n";
  bench::write_metrics(cfg);
  return 0;
}
