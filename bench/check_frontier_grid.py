"""Validates a bench_strategy_frontier --json grid dump.

Checks that the dump is valid JSON with the per-cell schema and that
coverage is strict: every strategy appears under every query-length
exactly once, and the canonical five strategies (random-hash, greedy,
multilevel, lprr, hypergraph) are all present.

On top of coverage it asserts the hypergraph headline: on every
long-query workload (mean query length >= MIN_QLEN), "hypergraph"
achieves strictly lower rate-weighted lambda-1 on the held-out February
trace than both "multilevel" and "greedy" — at comparable capacity
feasibility: the hypergraph cell must itself be capacity-feasible
(scoped feasibility flag set and max load factor within LOAD_EPS of
1.0) whenever the rival it is judged against is. Partitioners
legitimately fill nodes to ~100% of the slacked capacity while greedy
leaves headroom, so raw load factors are not compared against each
other.

Usage: python3 check_frontier_grid.py <grid.json>
"""
import json
import sys

REQUIRED = {
    "seed", "threads", "nodes", "scope", "qlen", "realized_qlen",
    "strategy", "lambda_feb", "lambda_scoped_norm", "pair_cost_norm",
    "max_load_factor", "feasible", "wall_ms",
}

EXPECTED_STRATEGIES = {
    "random-hash", "greedy", "multilevel", "lprr", "hypergraph",
}

# Judge the headline only where the pairwise collapse demonstrably thins
# out; at the paper's ~2.54 the approximation is close to exact and the
# strategies legitimately tie.
MIN_QLEN = 4.0
LOAD_EPS = 1e-9


def main(path):
    with open(path) as f:
        dump = json.load(f)
    cells = dump["cells"]
    if not cells:
        raise SystemExit("frontier grid dump is empty")

    by_cell = {}
    for cell in cells:
        missing = REQUIRED - set(cell)
        if missing:
            raise SystemExit(f"cell {cell} missing keys {sorted(missing)}")
        if cell["lambda_feb"] < 0 or cell["wall_ms"] < 0:
            raise SystemExit(f"negative measurement in cell: {cell}")
        key = (cell["qlen"], cell["strategy"])
        if key in by_cell:
            raise SystemExit(f"duplicate cell {key}")
        by_cell[key] = cell

    qlens = sorted({q for q, _ in by_cell})
    strategies = {s for _, s in by_cell}
    missing = EXPECTED_STRATEGIES - strategies
    if missing:
        raise SystemExit(f"strategies never ran: {sorted(missing)}")
    for q in qlens:
        for s in strategies:
            if (q, s) not in by_cell:
                raise SystemExit(f"coverage hole: qlen={q} strategy={s!r}")

    long_qlens = [q for q in qlens if q >= MIN_QLEN]
    if not long_qlens:
        raise SystemExit(
            f"no workload with mean query length >= {MIN_QLEN}; the "
            "hypergraph headline was never exercised")
    for q in long_qlens:
        hg = by_cell[(q, "hypergraph")]
        for rival_name in ("multilevel", "greedy"):
            rival = by_cell[(q, rival_name)]
            if not hg["lambda_feb"] < rival["lambda_feb"]:
                raise SystemExit(
                    f"qlen={q}: hypergraph lambda {hg['lambda_feb']:.4f} "
                    f"not strictly below {rival_name}'s "
                    f"{rival['lambda_feb']:.4f}")
            if rival["feasible"] and not (
                    hg["feasible"]
                    and hg["max_load_factor"] <= 1.0 + LOAD_EPS):
                raise SystemExit(
                    f"qlen={q}: hypergraph is not capacity-feasible "
                    f"(feasible={hg['feasible']}, load factor "
                    f"{hg['max_load_factor']:.3f}) while {rival_name} is")

    n_checked = len(long_qlens)
    print(
        f"frontier grid OK: {len(cells)} cells, {len(qlens)} query lengths x "
        f"{len(strategies)} strategies; hypergraph beat multilevel and "
        f"greedy on all {n_checked} long-query workload(s)")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    main(sys.argv[1])
