# Smoke contract: the LP engine knobs change solver internals only. At
# tiny scale a bench's stdout (placements, costs, balance) is
# byte-identical across --lp-backend=dense/revised,
# --lp-pricing=dantzig/candidate, --lp-warm-start=on/off, and an
# aggressive --lp-refactor-interval — the CCA LPs are built with
# randomized vertex-unique objectives, so every backend and pivot path
# lands on the same optimum. Driven by ctest as
#   cmake -DBENCH=... -DTB_ARGS=... -P <this>
function(run_bench out_var)
  execute_process(
    COMMAND ${BENCH} ${TB_ARGS} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench ${ARGN} failed with exit code ${rc}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_bench(reference)
run_bench(dense --lp-backend=dense)
run_bench(revised --lp-backend=revised)
run_bench(dantzig --lp-pricing=dantzig)
run_bench(cold --lp-warm-start=off)
run_bench(refactor --lp-refactor-interval=7)

foreach(variant dense revised dantzig cold refactor)
  if(NOT ${variant} STREQUAL reference)
    message(FATAL_ERROR
      "LP flag variant '${variant}' perturbed bench stdout")
  endif()
endforeach()
