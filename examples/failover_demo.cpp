// Failover demo: one cluster's afternoon of crashes, end to end.
//
// A small search tier runs an LPRR placement when nodes start failing.
// The walkthrough shows the three layers the serving stack stacks up
// against fail-stop faults:
//   1. replication + failover — each keyword's replica set follows the
//      placement (core::PlacementMap resolve); a dead primary costs a
//      timeout and a retry, not the query;
//   2. degraded results — when every reachable replica of a keyword is
//      down, the query is answered over the keywords that remain and
//      reports partial coverage instead of failing outright;
//   3. recovery — core::RecoveryPlanner re-places the dead nodes'
//      objects onto survivors under a migration budget, most valuable
//      (query-frequent) first; the repaired placement is published as
//      the next PlacementMap epoch (with_placement).
//
//   ./failover_demo [--nodes=6] [--degree=1] [--mttf=4000] [--mttr=1500]
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/partial_optimizer.hpp"
#include "core/placement_map.hpp"
#include "core/recovery.hpp"
#include "search/inverted_index.hpp"
#include "sim/cluster.hpp"
#include "sim/faults.hpp"
#include "sim/replay.hpp"
#include "trace/documents.hpp"
#include "trace/workload.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 6));
  const int degree = static_cast<int>(args.get_int("degree", 1));
  const double mttf_ms = args.get_double("mttf", 4000.0);
  const double mttr_ms = args.get_double("mttr", 1500.0);
  args.reject_unused();

  // A small corpus, a workload, and an LPRR placement to protect.
  trace::CorpusConfig corpus_cfg;
  corpus_cfg.num_documents = 1500;
  corpus_cfg.vocabulary_size = 1200;
  corpus_cfg.mean_distinct_words = 60.0;
  corpus_cfg.seed = 7;
  const search::InvertedIndex index =
      search::InvertedIndex::build(trace::Corpus::generate(corpus_cfg));
  const std::vector<std::uint64_t> sizes = index.index_sizes();

  trace::WorkloadConfig query_cfg;
  query_cfg.vocabulary_size = 1200;
  query_cfg.num_topics = 60;
  query_cfg.topic_coherence = 0.9;
  query_cfg.seed = 7;
  trace::WorkloadModel model(query_cfg);
  const trace::QueryTrace training = model.generate(15000, 71);
  const trace::QueryTrace serving = model.generate(15000, 72);

  core::PartialOptimizerConfig opt_cfg;
  opt_cfg.num_nodes = nodes;
  opt_cfg.scope = 300;
  opt_cfg.seed = 7;
  opt_cfg.rounding.trials = 16;
  const core::PartialOptimizer optimizer(training, sizes, opt_cfg);
  const core::PlacementPlan plan = optimizer.run("lprr");

  double total_bytes = 0.0;
  for (std::uint64_t s : sizes) total_bytes += static_cast<double>(s);
  const double capacity = opt_cfg.capacity_slack * total_bytes / nodes;

  // The afternoon's fault timeline: every node crashes and recovers on
  // exponential clocks. The same schedule drives every run below.
  sim::FaultScheduleConfig fault_cfg;
  fault_cfg.mttf_ms = mttf_ms;
  fault_cfg.mttr_ms = mttr_ms;
  fault_cfg.horizon_ms = 30000.0;
  fault_cfg.seed = 7;
  const sim::FaultSchedule schedule =
      sim::FaultSchedule::generate(nodes, fault_cfg);
  std::cout << "fault schedule: " << schedule.crash_count() << " crashes"
            << " across " << nodes << " nodes over "
            << fault_cfg.horizon_ms / 1000.0 << "s (mttf "
            << mttf_ms / 1000.0 << "s, mttr " << mttr_ms / 1000.0
            << "s)\n\n";

  // Serve the same trace healthy, unreplicated, and replicated. The
  // replica set of every keyword comes from the installed PlacementMap:
  // degree r puts copies on the r placement-following successor nodes.
  const auto serve = [&](const sim::FaultSchedule* faults, int deg) {
    core::PlacementMapConfig map_cfg;
    map_cfg.num_nodes = nodes;
    map_cfg.degree = deg;
    sim::Cluster cluster(nodes, capacity);
    cluster.install_placement(
        std::make_shared<const core::PlacementMap>(
            core::PlacementMap::build(plan.keyword_to_node, map_cfg)),
        sizes);
    sim::FaultReplayConfig cfg;
    cfg.faults = faults;
    cfg.arrival_rate_qps =
        static_cast<double>(serving.size()) * 1000.0 / fault_cfg.horizon_ms;
    return sim::replay_trace_with_faults(cluster, index, serving, cfg);
  };

  common::Table table({"configuration", "avail", "coverage", "p99 ms",
                       "retries", "failovers"});
  const auto add = [&](const char* name, const sim::FaultReplayStats& s) {
    table.add_row({name, common::Table::pct(s.availability),
                   common::Table::pct(s.mean_coverage),
                   common::Table::num(s.base.p99_latency_ms, 2),
                   std::to_string(s.retries), std::to_string(s.failovers)});
  };
  add("healthy cluster", serve(nullptr, 0));
  add("faults, no replicas", serve(&schedule, 0));
  add("faults, degree 1", serve(&schedule, degree));
  table.print(std::cout);
  std::cout << "\nReplication converts lost queries into failovers: a dead"
               " primary costs a timeout, then the replica answers.\n\n";

  // Recovery: at the worst instant, re-place the dead nodes' objects.
  double worst_time = 0.0;
  std::size_t worst_dead = 0;
  for (const sim::FaultEvent& ev : schedule.events()) {
    const std::size_t dead = schedule.dead_nodes(ev.time_ms).size();
    if (dead > worst_dead) {
      worst_dead = dead;
      worst_time = ev.time_ms;
    }
  }
  if (worst_dead == 0) {
    std::cout << "No node ever failed; nothing to recover.\n";
    return 0;
  }
  const std::vector<bool> alive = schedule.alive_mask(worst_time);
  core::Placement scoped(plan.scope.size());
  for (std::size_t i = 0; i < plan.scope.size(); ++i)
    scoped[i] = plan.keyword_to_node[plan.scope[i]];
  const std::vector<std::size_t> freq = training.keyword_frequencies();
  std::vector<double> weights(plan.scope.size());
  for (std::size_t i = 0; i < plan.scope.size(); ++i)
    weights[i] = static_cast<double>(freq[plan.scope[i]]) + 1.0;

  core::RecoveryConfig rec_cfg;
  rec_cfg.migration_budget_fraction = 0.25;
  rec_cfg.seed = 7;
  const core::RecoveryResult result = core::RecoveryPlanner(rec_cfg).replan(
      optimizer.scoped_instance(), scoped, alive, weights);
  std::cout << "recovery at t=" << common::Table::num(worst_time, 0)
            << "ms (" << worst_dead << "/" << nodes << " nodes dead): "
            << result.objects_recovered << "/" << result.objects_lost
            << " objects re-placed, "
            << common::Table::pct(result.coverage_restored)
            << " of lost importance restored, "
            << common::Table::num(result.migration.bytes_moved / 1024, 1)
            << " KiB migrated (budget "
            << common::Table::pct(rec_cfg.migration_budget_fraction)
            << " of scope bytes)\n";

  // Publish the repaired placement as the next epoch: in-flight queries
  // keep resolving against the old map; new ones see the repair.
  std::vector<int> repaired = plan.keyword_to_node;
  for (std::size_t i = 0; i < plan.scope.size(); ++i)
    repaired[plan.scope[i]] = result.placement[i];
  core::PlacementMapConfig map_cfg;
  map_cfg.num_nodes = nodes;
  const core::PlacementMap before =
      core::PlacementMap::build(plan.keyword_to_node, map_cfg);
  const core::PlacementMap after = before.with_placement(repaired);
  std::size_t moved = 0;
  for (trace::KeywordId k = 0;
       k < static_cast<trace::KeywordId>(repaired.size()); ++k)
    if (after.primary(k) != before.primary(k)) ++moved;
  std::cout << "published repaired placement as epoch " << after.epoch()
            << " (" << moved << " keywords moved, exception table "
            << after.bytes() << " bytes)\n";
  std::cout << "\n(The planner lands each object on the survivor holding"
               " its correlated siblings, so the co-location the optimizer"
               " paid for outlives the node that hosted it.)\n";
  return 0;
}
