// Quickstart: the CCA workflow on a hand-sized instance.
//
// Builds a 8-object / 3-node instance with skewed pair correlations,
// solves the Fig. 4 LP relaxation, rounds it with Algorithm 2.1, and
// compares against random-hash, greedy, and the exact brute-force optimum.
//
//   ./quickstart [--seed=N] [--trials=K]
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/component_solver.hpp"
#include "core/instance.hpp"
#include "core/placements.hpp"
#include "core/rounding.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int trials = static_cast<int>(args.get_int("trials", 16));
  args.reject_unused();

  // Objects: two tightly correlated clusters {0,1,2} and {3,4}, a loose
  // pair {5,6}, and a loner {7}. Sizes in "MB"; three nodes with capacity
  // twice the average load (the paper's rule).
  const std::vector<double> sizes{40, 30, 20, 50, 35, 25, 25, 60};
  double total = 0.0;
  for (double s : sizes) total += s;
  const std::vector<double> capacities(3, 2.0 * total / 3.0);
  const std::vector<core::PairWeight> pairs{
      {0, 1, 0.30, 30.0}, {0, 2, 0.25, 20.0}, {1, 2, 0.20, 20.0},
      {3, 4, 0.40, 35.0}, {5, 6, 0.05, 25.0}, {2, 3, 0.01, 20.0},
  };
  const core::CcaInstance instance(sizes, capacities, pairs);

  std::cout << "CCA quickstart: " << instance.num_objects() << " objects, "
            << instance.num_nodes() << " nodes, " << instance.pairs().size()
            << " correlated pairs\n"
            << "total pair cost if everything were separated: "
            << instance.total_pair_cost() << "\n\n";

  // 1) LPRR: exact LP relaxation (component solver), then best-of-K
  //    randomized rounding.
  const core::FractionalPlacement fractional =
      core::ComponentLpSolver(seed).solve(instance);
  std::cout << "LP relaxation objective: " << fractional.lp_objective(instance)
            << " (the relaxation is degenerate for pin-free instances —"
               " see DESIGN.md)\n\n";
  common::Rng rng(seed);
  const core::RoundingResult lprr = core::round_best_of(
      fractional, instance, core::RoundingPolicy{trials, true}, rng);

  // 2) Baselines.
  const core::Placement random = core::random_hash_placement(instance);
  const core::Placement greedy = core::greedy_placement(instance);
  const auto exact = core::brute_force_optimal(instance);

  common::Table table(
      {"strategy", "comm cost", "normalized", "max load factor", "feasible"});
  const auto add = [&](const std::string& name, const core::Placement& p) {
    const core::PlacementReport r = core::evaluate_placement(instance, p);
    table.add_row({name, common::Table::num(r.cost, 3),
                   common::Table::pct(r.normalized_cost),
                   common::Table::num(r.max_load_factor, 2),
                   r.feasible ? "yes" : "no"});
  };
  add("random-hash", random);
  add("greedy", greedy);
  add("lprr (best of " + std::to_string(trials) + ")", lprr.placement);
  if (exact) add("brute-force optimal", exact->placement);
  table.print(std::cout);

  std::cout << "\nLPRR placement:";
  for (int i = 0; i < instance.num_objects(); ++i)
    std::cout << " obj" << i << "->node" << lprr.placement[i];
  std::cout << "\n";
  return 0;
}
