// Drift replanner: six months of interest drift, three operating policies.
//
// Month 0 optimizes placement from the first month's queries (LPRR). Each
// later month the interest model drifts a little more and a new month of
// queries arrives. Three operators respond differently:
//   never    — keep the month-0 placement forever (the paper's implicit
//              strategy; Fig. 2B argues drift is slow),
//   budgeted — bounded-churn incremental replanning (10% of bytes/month),
//   full     — re-optimize from scratch every month.
// Costs are MEASURED by replaying each month's trace through the cluster;
// migration bytes are what each policy shipped to re-arrange indices.
//
//   ./drift_replanner [--months=6] [--drift=0.08] [--budget=0.1]
//                     [--nodes=10] [--scope=600]
#include <iostream>
#include <unordered_map>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/correlation.hpp"
#include "core/migration.hpp"
#include "core/partial_optimizer.hpp"
#include "search/inverted_index.hpp"
#include "sim/cluster.hpp"
#include "sim/replay.hpp"
#include "trace/documents.hpp"
#include "trace/workload.hpp"

using namespace cca;

namespace {

/// Scoped instance over a fixed keyword set with correlations from `t`.
core::CcaInstance scoped_instance(const std::vector<trace::KeywordId>& scope,
                                  const std::vector<std::uint64_t>& sizes,
                                  const trace::QueryTrace& t, int nodes,
                                  double slack) {
  std::unordered_map<trace::KeywordId, int> object_of;
  std::vector<double> object_sizes;
  double total = 0.0;
  for (std::size_t pos = 0; pos < scope.size(); ++pos) {
    object_of[scope[pos]] = static_cast<int>(pos);
    object_sizes.push_back(static_cast<double>(sizes[scope[pos]]));
    total += object_sizes.back();
  }
  std::vector<core::PairWeight> pairs;
  for (const core::KeywordPairWeight& p : core::build_pair_weights(
           t, sizes, core::OperationModel::kSmallestPair)) {
    const auto i = object_of.find(p.a);
    const auto j = object_of.find(p.b);
    if (i == object_of.end() || j == object_of.end()) continue;
    pairs.push_back({i->second, j->second, p.r, p.w});
  }
  return core::CcaInstance(
      object_sizes,
      std::vector<double>(static_cast<std::size_t>(nodes),
                          slack * total / nodes),
      pairs);
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const int months = static_cast<int>(args.get_int("months", 6));
  const double drift_per_month = args.get_double("drift", 0.08);
  const double budget = args.get_double("budget", 0.1);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 600));
  args.reject_unused();

  // Corpus, index, initial workload.
  trace::CorpusConfig corpus_cfg;
  corpus_cfg.num_documents = 4000;
  corpus_cfg.vocabulary_size = 2500;
  corpus_cfg.mean_distinct_words = 70.0;
  corpus_cfg.seed = 2;
  const search::InvertedIndex index =
      search::InvertedIndex::build(trace::Corpus::generate(corpus_cfg));
  const std::vector<std::uint64_t> sizes = index.index_sizes();

  trace::WorkloadConfig query_cfg;
  query_cfg.vocabulary_size = 2500;
  query_cfg.num_topics = 125;
  query_cfg.topic_coherence = 0.9;
  query_cfg.seed = 2;
  trace::WorkloadModel model(query_cfg);
  const trace::QueryTrace month0 = model.generate(25000, 1000);

  // Month-0 plan: LPRR partial optimization.
  core::PartialOptimizerConfig opt_cfg;
  opt_cfg.num_nodes = nodes;
  opt_cfg.scope = scope;
  opt_cfg.seed = 2;
  opt_cfg.rounding.trials = 16;
  const core::PartialOptimizer optimizer(month0, sizes, opt_cfg);
  const core::PlacementPlan base_plan = optimizer.run("lprr");

  double total_bytes = 0.0;
  for (std::uint64_t s : sizes) total_bytes += static_cast<double>(s);
  const double capacity = opt_cfg.capacity_slack * total_bytes / nodes;

  // Per-policy state: the scoped placement (tail stays hashed).
  core::Placement initial(base_plan.scope.size());
  for (std::size_t pos = 0; pos < base_plan.scope.size(); ++pos)
    initial[pos] = base_plan.keyword_to_node[base_plan.scope[pos]];
  struct Policy {
    std::string name;
    double budget_fraction;  // <0 = never replan
    core::Placement placement;
    double migrated_bytes = 0.0;
  };
  std::vector<Policy> policies = {{"never", -1.0, initial, 0.0},
                                  {"budgeted", budget, initial, 0.0},
                                  {"full", 1.0, initial, 0.0}};

  const auto replay_policy = [&](const Policy& policy,
                                 const trace::QueryTrace& month_trace) {
    std::vector<int> keyword_to_node = base_plan.keyword_to_node;
    for (std::size_t pos = 0; pos < base_plan.scope.size(); ++pos)
      keyword_to_node[base_plan.scope[pos]] = policy.placement[pos];
    sim::Cluster cluster(nodes, capacity);
    cluster.install_placement(keyword_to_node, sizes);
    return sim::replay_trace(cluster, index, month_trace);
  };

  std::cout << "Drift replanner: " << months << " months, "
            << common::Table::pct(drift_per_month) << " drift/month, "
            << common::Table::pct(budget) << " monthly migration budget\n\n";
  common::Table table({"month", "policy", "MiB moved (queries)",
                       "MiB migrated", "local ops"});

  for (int month = 1; month <= months; ++month) {
    model = model.drifted(drift_per_month, 4000 + month);
    const trace::QueryTrace month_trace =
        model.generate(25000, 1000 + month);
    const core::CcaInstance month_instance =
        scoped_instance(base_plan.scope, sizes, month_trace, nodes,
                        opt_cfg.capacity_slack);

    for (Policy& policy : policies) {
      double migrated = 0.0;
      if (policy.budget_fraction >= 0.0) {
        core::IncrementalConfig inc;
        inc.migration_budget_fraction = policy.budget_fraction;
        inc.rounding.trials = 16;
        inc.seed = 2 + static_cast<std::uint64_t>(month);
        const core::IncrementalResult r =
            core::IncrementalOptimizer(inc).reoptimize(month_instance,
                                                       policy.placement);
        migrated = r.migration.bytes_moved;
        policy.placement = r.placement;
        policy.migrated_bytes += migrated;
      }
      const sim::ReplayStats stats = replay_policy(policy, month_trace);
      table.add_row(
          {std::to_string(month), policy.name,
           common::Table::num(
               static_cast<double>(stats.total_bytes) / (1024 * 1024), 1),
           common::Table::num(migrated / (1024 * 1024), 2),
           common::Table::pct(
               stats.multi_keyword_queries > 0
                   ? static_cast<double>(stats.local_queries) /
                         static_cast<double>(stats.multi_keyword_queries)
                   : 0.0)});
    }
  }
  table.print(std::cout);

  std::cout << "\ncumulative migration: ";
  for (const Policy& policy : policies)
    std::cout << policy.name << "="
              << common::Table::num(policy.migrated_bytes / (1024 * 1024), 1)
              << "MiB  ";
  std::cout << "\n(query traffic vs migration traffic is the operator's"
               " real trade-off; 'never' banks on the paper's stability"
               " premise)\n";
  return 0;
}
