// Distributed aggregation database — the paper's second motivating
// application (Sec. 1.1): a partitioned dataset (think biological-sequence
// shards) where queries touch several partitions and results are combined
// with UNION-like aggregation, so the Sec. 3.2 union cost model applies:
// every requested shard ships to the largest shard's node.
//
// Shards play the role of objects: sizes are heavy-tailed, and access
// correlations come from "studies" that repeatedly co-access the same
// shard families. We optimize shard placement with each strategy and
// measure union-style replay traffic.
//
//   ./aggregation_db [--nodes=6] [--shards=300] [--queries=20000] [--seed=3]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/partial_optimizer.hpp"
#include "search/inverted_index.hpp"
#include "sim/cluster.hpp"
#include "sim/replay.hpp"
#include "trace/documents.hpp"
#include "trace/workload.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 6));
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 300));
  const auto queries =
      static_cast<std::size_t>(args.get_int("queries", 20000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  args.reject_unused();

  // Model each shard as a "keyword" whose records are synthetic documents:
  // reusing the corpus machinery gives heavy-tailed shard sizes for free.
  trace::CorpusConfig shard_cfg;
  shard_cfg.num_documents = 4000;  // records spread across shards
  shard_cfg.vocabulary_size = shards;
  shard_cfg.mean_distinct_words = 12.0;  // each record lives in ~12 shards
  shard_cfg.seed = seed;
  const trace::Corpus records = trace::Corpus::generate(shard_cfg);
  const search::InvertedIndex shard_index =
      search::InvertedIndex::build(records);
  const std::vector<std::uint64_t> sizes = shard_index.index_sizes();

  // Studies co-access shard families: the topic model again.
  trace::WorkloadConfig access_cfg;
  access_cfg.vocabulary_size = shards;
  access_cfg.num_topics = shards / 10;
  access_cfg.topic_size = 5;
  access_cfg.mean_query_length = 3.2;  // aggregations touch more objects
  access_cfg.seed = seed;
  const trace::WorkloadModel model(access_cfg);
  const trace::QueryTrace history = model.generate(queries, seed + 100);
  const trace::QueryTrace live = model.generate(queries, seed + 200);

  std::cout << "Aggregation DB: " << shards << " shards over " << nodes
            << " nodes; " << history.size()
            << " historical aggregation queries (mean "
            << common::Table::num(history.mean_query_length(), 2)
            << " shards/query)\n\n";

  core::PartialOptimizerConfig cfg;
  cfg.num_nodes = nodes;
  cfg.scope = shards;  // small object count: optimize everything
  cfg.seed = seed;
  cfg.rounding.trials = 16;
  // Union-like operations: every co-requested pair matters, not just the
  // two smallest objects.
  cfg.operation_model = core::OperationModel::kAllPairs;
  const core::PartialOptimizer optimizer(history, sizes, cfg);

  double total_bytes = 0.0;
  for (std::uint64_t s : sizes) total_bytes += static_cast<double>(s);
  const double capacity = cfg.capacity_slack * total_bytes / nodes;

  common::Table table({"strategy", "KiB moved", "bytes/query",
                       "p99 bytes/query", "storage imbalance"});
  for (std::string_view strategy :
       {"random-hash", "greedy",
        "lprr"}) {
    const core::PlacementPlan plan = optimizer.run(strategy);
    sim::Cluster cluster(nodes, capacity);
    cluster.install_placement(plan.keyword_to_node, sizes);
    const sim::ReplayStats stats = sim::replay_trace(
        cluster, shard_index, live, sim::OperationKind::kUnion);
    table.add_row(
        {std::string(strategy),
         common::Table::num(static_cast<double>(stats.total_bytes) / 1024, 1),
         common::Table::num(stats.mean_bytes_per_query, 1),
         common::Table::num(stats.p99_bytes_per_query, 0),
         common::Table::num(stats.storage_imbalance, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(Union-like aggregation: requested shards ship to the"
               " largest shard's node; correlations use the all-pairs"
               " model.)\n";
  return 0;
}
