// Distributed full-text search engine — the paper's motivating application.
//
// Generates a synthetic web corpus and a two-"month" query workload,
// builds inverted indices, optimizes keyword-index placement with each
// strategy on the January trace, then replays the February trace and
// reports measured communication, locality, and storage balance.
//
//   ./search_engine [--nodes=10] [--scope=500] [--docs=4000]
//                   [--vocab=2000] [--queries=30000] [--seed=1]
//                   [--strategies=random-hash,greedy,lprr]
//
// --strategies is resolved by name through core::StrategyRegistry; any
// strategy registered at startup can be compared without editing this
// example.
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/partial_optimizer.hpp"
#include "core/placement_map.hpp"
#include "search/inverted_index.hpp"
#include "sim/cluster.hpp"
#include "sim/replay.hpp"
#include "trace/documents.hpp"
#include "trace/workload.hpp"

using namespace cca;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 10));
  const auto scope = static_cast<std::size_t>(args.get_int("scope", 500));
  const auto docs = static_cast<std::size_t>(args.get_int("docs", 4000));
  const auto vocab = static_cast<std::size_t>(args.get_int("vocab", 2000));
  const auto queries =
      static_cast<std::size_t>(args.get_int("queries", 30000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::vector<std::string> strategies = core::parse_strategy_list(
      args.get_string("strategies", "random-hash,greedy,lprr"));
  args.reject_unused();

  std::cout << "Building corpus (" << docs << " pages, vocabulary " << vocab
            << ") and inverted indices...\n";
  trace::CorpusConfig corpus_cfg;
  corpus_cfg.num_documents = docs;
  corpus_cfg.vocabulary_size = vocab;
  corpus_cfg.mean_distinct_words = 80.0;
  corpus_cfg.seed = seed;
  const trace::Corpus corpus = trace::Corpus::generate(corpus_cfg);
  const search::InvertedIndex index = search::InvertedIndex::build(corpus);
  const std::vector<std::uint64_t> sizes = index.index_sizes();
  std::cout << "  total index size: " << index.total_bytes() / 1024
            << " KiB\n";

  trace::WorkloadConfig query_cfg;
  query_cfg.vocabulary_size = vocab;
  query_cfg.num_topics = vocab / 20;
  query_cfg.seed = seed;
  const trace::WorkloadModel model(query_cfg);
  const trace::QueryTrace january = model.generate(queries, seed * 11 + 1);
  const trace::QueryTrace february = model.generate(queries, seed * 13 + 2);
  std::cout << "  January trace: " << january.size()
            << " queries (mean length "
            << common::Table::num(january.mean_query_length(), 2)
            << "); optimizing placement on it\n"
            << "  February trace: " << february.size()
            << " queries; measuring on it\n\n";

  core::PartialOptimizerConfig cfg;
  cfg.num_nodes = nodes;
  cfg.scope = scope;
  cfg.seed = seed;
  cfg.rounding.trials = 16;
  const core::PartialOptimizer optimizer(january, sizes, cfg);

  double total_bytes = 0.0;
  for (std::uint64_t s : sizes) total_bytes += static_cast<double>(s);
  const double capacity = cfg.capacity_slack * total_bytes / nodes;

  common::Table table({"strategy", "KiB moved", "bytes/query", "local ops",
                       "p99 latency ms", "storage imbalance",
                       "lookup entries"});
  std::uint64_t random_bytes = 0;
  for (const std::string& strategy : strategies) {
    const core::PlacementPlan plan = optimizer.run(strategy);
    core::PlacementMapConfig map_cfg;
    map_cfg.num_nodes = nodes;
    const auto map = std::make_shared<const core::PlacementMap>(
        core::PlacementMap::build(plan.keyword_to_node, map_cfg));
    sim::Cluster cluster(nodes, capacity);
    cluster.install_placement(map, sizes);
    const sim::ReplayStats stats =
        sim::replay_trace(cluster, index, february);
    if (strategy == "random-hash") random_bytes = stats.total_bytes;
    table.add_row(
        {strategy,
         common::Table::num(static_cast<double>(stats.total_bytes) / 1024, 1),
         common::Table::num(stats.mean_bytes_per_query, 1),
         common::Table::pct(
             stats.multi_keyword_queries > 0
                 ? static_cast<double>(stats.local_queries) /
                       static_cast<double>(stats.multi_keyword_queries)
                 : 0.0),
         common::Table::num(stats.p99_latency_ms, 2),
         common::Table::num(stats.storage_imbalance, 2),
         std::to_string(map->entries())});
    if (strategy == "lprr" && random_bytes > 0) {
      const double saving =
          1.0 - static_cast<double>(stats.total_bytes) /
                    static_cast<double>(random_bytes);
      std::cout << "LPRR communication saving vs random hash: "
                << common::Table::pct(saving) << "\n\n";
    }
  }
  table.print(std::cout);
  return 0;
}
